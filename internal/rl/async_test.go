package rl

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func banditEnvs(n int, arms int, seed int64) []Env {
	envs := make([]Env, n)
	for w := range envs {
		envs[w] = &banditEnv{rng: rand.New(rand.NewSource(seed + int64(w))), arms: arms}
	}
	return envs
}

// pacedEnv adds a fixed per-step delay to an environment, so stress tests
// get genuine actor overlap instead of one fast actor draining the whole
// episode budget before the others are scheduled.
type pacedEnv struct {
	Env
	delay time.Duration
}

func (e *pacedEnv) Step(a int) (State, float64, bool) {
	time.Sleep(e.delay)
	return e.Env.Step(a)
}

func pacedEnvs(n, arms int, seed int64, delay time.Duration) []Env {
	envs := banditEnvs(n, arms, seed)
	for w := range envs {
		envs[w] = &pacedEnv{Env: envs[w], delay: delay}
	}
	return envs
}

// greedyAccuracy scores the greedy policy on fresh contexts.
func greedyAccuracy(agent *Reinforce, arms int, trials int) int {
	env := &banditEnv{rng: rand.New(rand.NewSource(99)), arms: arms}
	correct := 0
	for i := 0; i < trials; i++ {
		s := env.Reset()
		if agent.Greedy(s) == env.ctx {
			correct++
		}
	}
	return correct
}

// TestTrainAsyncConvergesLikeSync: asynchronous actor-learner training must
// reach the synchronous path's final reward within tolerance. The sequential
// reference on this task reaches ≥90/100 greedy accuracy
// (TestReinforceLearnsContextualBandit); bounded-staleness off-policy
// collection is allowed a small concession.
func TestTrainAsyncConvergesLikeSync(t *testing.T) {
	const arms = 4
	agent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 1})
	stats := TrainAsync(agent, banditEnvs(4, arms, 42), 2000, AsyncConfig{
		Actors: 4, Staleness: 4, Seed: 7,
	}, nil, nil)
	if stats.Episodes != 2000 {
		t.Fatalf("collected %d episodes, want 2000", stats.Episodes)
	}
	if stats.Updates == 0 || stats.Publishes == 0 {
		t.Fatalf("learner never updated/published: %+v", stats)
	}
	if correct := greedyAccuracy(agent, arms, 100); correct < 85 {
		t.Fatalf("async greedy policy correct on %d/100 contexts, want ≥ 85 (sync reference: ≥ 90)", correct)
	}
}

// TestTrainAsyncStalenessBound is the stress + property test for the async
// path: 8 actors against a learner publishing a fresh snapshot after every
// episode (BatchSize 1), ≥200 publishes, staleness bound K=2. Run with
// -race this exercises the lock-free snapshot exchange under real
// contention; the property asserted is that NO actor ever collected an
// episode against a snapshot more than K versions behind the server at
// episode start, and that each actor's snapshot versions are monotone.
func TestTrainAsyncStalenessBound(t *testing.T) {
	const arms, episodes, K = 3, 300, 2
	agent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{8}, BatchSize: 1, Seed: 2})
	type actorTrace struct {
		lastSeq     int
		lastVersion uint64
	}
	traces := make(map[int]*actorTrace)
	seen := 0
	stats := TrainAsync(agent, pacedEnvs(8, arms, 11, 100*time.Microsecond), episodes, AsyncConfig{
		Actors: 8, Staleness: K, Seed: 13,
	}, nil, func(e AsyncEpisode) {
		seen++
		if e.Lag > K {
			t.Errorf("worker %d episode %d acted on staleness %d > K=%d", e.Worker, e.Seq, e.Lag, K)
		}
		tr := traces[e.Worker]
		if tr == nil {
			tr = &actorTrace{lastSeq: -1}
			traces[e.Worker] = tr
		}
		// Channel sends from one worker arrive in seq order, and snapshot
		// versions can only move forward.
		if e.Seq != tr.lastSeq+1 {
			t.Errorf("worker %d: episode seq %d after %d", e.Worker, e.Seq, tr.lastSeq)
		}
		if e.Version < tr.lastVersion {
			t.Errorf("worker %d: snapshot version went backwards (%d after %d)", e.Worker, e.Version, tr.lastVersion)
		}
		tr.lastSeq, tr.lastVersion = e.Seq, e.Version
	})
	if seen != episodes {
		t.Fatalf("onEpisode saw %d episodes, want %d", seen, episodes)
	}
	if stats.MaxLag > K {
		t.Fatalf("MaxLag %d exceeds staleness bound %d", stats.MaxLag, K)
	}
	if stats.Publishes < 200 {
		t.Fatalf("stress run published %d snapshots, want ≥ 200", stats.Publishes)
	}
	if stats.Updates != episodes {
		t.Fatalf("updates = %d, want one per episode with BatchSize 1", stats.Updates)
	}
	if len(traces) < 2 {
		t.Fatalf("only %d actors delivered episodes", len(traces))
	}
}

// TestTrainAsyncDropsStaleTrajectories: with DropStale and a tight bound,
// trajectories that aged in the queue past K versions must be discarded,
// still count toward the budget, and be flagged to the callback.
func TestTrainAsyncDropsStaleTrajectories(t *testing.T) {
	const arms, episodes, K = 3, 600, 1
	agent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{8}, BatchSize: 1, Seed: 3})
	dropped, kept := 0, 0
	stats := TrainAsync(agent, pacedEnvs(8, arms, 21, 20*time.Microsecond), episodes, AsyncConfig{
		Actors: 8, Staleness: K, Queue: 256, DropStale: true, Seed: 23,
	}, nil, func(e AsyncEpisode) {
		if e.Dropped {
			dropped++
		} else {
			kept++
		}
	})
	if dropped+kept != episodes {
		t.Fatalf("callback saw %d+%d episodes, want %d", dropped, kept, episodes)
	}
	if stats.Dropped != dropped {
		t.Fatalf("stats.Dropped = %d, callback counted %d", stats.Dropped, dropped)
	}
	if stats.Updates != kept {
		t.Fatalf("updates = %d, want one per kept episode (%d)", stats.Updates, kept)
	}
	if stats.Publishes != uint64(stats.Updates) {
		t.Fatalf("publishes = %d, updates = %d: must republish after every update", stats.Publishes, stats.Updates)
	}
	// With 8 fast actors, a 256-deep queue, and a learner that publishes per
	// episode, queued trajectories age many versions before consumption.
	if dropped == 0 {
		t.Fatal("no trajectory was ever dropped under a K=1 bound with a deep queue")
	}
}

// TestTrainAsyncThroughputBeatsSyncBarrier: at 4 actors on a workload with
// one persistently slow worker — heterogeneous collection cost is exactly
// the regime the round barrier cannot handle, because every round waits for
// the straggler while the learner and the fast actors idle — removing the
// barrier must not lose throughput. The async ticket draw instead
// load-balances episodes onto whoever is free. (The benchmarks
// BenchmarkAsyncCollect/BenchmarkSyncCollect measure the same comparison on
// the real planner workload at 1/4/8 actors.)
func TestTrainAsyncThroughputBeatsSyncBarrier(t *testing.T) {
	const arms, episodes, workers, batch = 4, 160, 4, 16
	newHeteroEnvs := func(seed int64) []Env {
		envs := banditEnvs(workers, arms, seed)
		for w := range envs {
			delay := 400 * time.Microsecond
			if w == 0 {
				delay = 2 * time.Millisecond // the straggler
			}
			envs[w] = &pacedEnv{Env: envs[w], delay: delay}
		}
		return envs
	}

	// Synchronous reference: rounds of one policy batch, frozen snapshots,
	// barrier join, learner updates between rounds (the TrainEpisodes shape).
	syncAgent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{16}, BatchSize: batch, Seed: 4})
	syncEnvs := newHeteroEnvs(31)
	syncStart := time.Now()
	snapSeed := int64(100)
	for done := 0; done < episodes; done += batch {
		policies := make([]func(State) int, workers)
		for w := range policies {
			snapSeed++
			policies[w] = syncAgent.PolicySnapshot(snapSeed)
		}
		per := SplitEpisodes(batch, workers)
		trajs := CollectParallel(syncEnvs, policies, per, 10, nil)
		syncAgent.ObserveAll(Interleave(trajs))
	}
	syncDur := time.Since(syncStart)

	asyncAgent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{16}, BatchSize: batch, Seed: 4})
	asyncStart := time.Now()
	TrainAsync(asyncAgent, newHeteroEnvs(31), episodes, AsyncConfig{
		Actors: workers, Staleness: 4, Seed: 41,
	}, nil, nil)
	asyncDur := time.Since(asyncStart)

	t.Logf("sync %v, async %v (%d episodes, %d workers)", syncDur, asyncDur, episodes, workers)
	// The straggler gives async a large structural advantage (~0.6× sync
	// in practice), so a generous noise margin still catches a real
	// regression — losing the advantage entirely — without flaking when a
	// loaded CI runner stalls the run for a few milliseconds.
	if float64(asyncDur) > 1.25*float64(syncDur) {
		t.Fatalf("async collection lost its barrier advantage: %v vs sync %v", asyncDur, syncDur)
	}
}

// TestAdaptiveStalenessTightensWhenLearnerOutpaces: with BatchSize 1 the
// learner publishes after every consumed episode, so actors constantly ride
// the staleness bound — the adaptive controller must tighten K below its
// configured ceiling (and never below MinStaleness).
func TestAdaptiveStalenessTightensWhenLearnerOutpaces(t *testing.T) {
	const actors = 4
	envs := make([]Env, actors)
	for w := range envs {
		envs[w] = &banditEnv{rng: rand.New(rand.NewSource(int64(60 + w))), arms: 3}
	}
	learner := NewReinforce(3, 3, ReinforceConfig{Hidden: []int{8}, BatchSize: 1, Seed: 61})
	cfg := AsyncConfig{
		Actors:         actors,
		Staleness:      8,
		AdaptStaleness: true,
		MinStaleness:   1,
		AdaptWindow:    8,
		Seed:           62,
	}
	stats := TrainAsync(learner, envs, 400, cfg, nil, nil)
	if stats.Publishes < 100 {
		t.Fatalf("learner published only %d times; the outpacing premise failed", stats.Publishes)
	}
	if stats.Tightened == 0 {
		t.Fatalf("bound never tightened despite a publish-per-episode learner: %+v", stats)
	}
	if stats.FinalStaleness >= 8 {
		t.Fatalf("final staleness %d did not drop below the ceiling 8", stats.FinalStaleness)
	}
	if stats.FinalStaleness < 1 {
		t.Fatalf("final staleness %d fell below MinStaleness 1", stats.FinalStaleness)
	}
	// The ceiling remains a hard bound on what any actor ever acted on.
	if stats.MaxLag > 8 {
		t.Fatalf("max lag %d exceeded the configured ceiling 8", stats.MaxLag)
	}
}

// TestAdaptiveStalenessIdleWithoutPublishes: when the learner never
// publishes (batch larger than the episode budget) there is no staleness
// pressure, so the adaptive bound must not tighten.
func TestAdaptiveStalenessIdleWithoutPublishes(t *testing.T) {
	const actors = 2
	envs := make([]Env, actors)
	for w := range envs {
		envs[w] = &banditEnv{rng: rand.New(rand.NewSource(int64(70 + w))), arms: 3}
	}
	learner := NewReinforce(3, 3, ReinforceConfig{Hidden: []int{8}, BatchSize: 1024, Seed: 71})
	cfg := AsyncConfig{
		Actors:         actors,
		Staleness:      4,
		AdaptStaleness: true,
		AdaptWindow:    8,
		Seed:           72,
	}
	stats := TrainAsync(learner, envs, 96, cfg, nil, nil)
	if stats.Publishes != 0 {
		t.Fatalf("unexpected publishes: %d", stats.Publishes)
	}
	if stats.Tightened != 0 {
		t.Fatalf("bound tightened %d times with zero publishes", stats.Tightened)
	}
	if stats.FinalStaleness != 4 {
		t.Fatalf("final staleness %d, want the configured 4", stats.FinalStaleness)
	}
}

// TestTrainAsyncCtxCancellationDrainsActors: cancelling the context mid-run
// must stop the learner early (Episodes < budget), unblock every actor —
// including actors blocked on the bounded queue — and return without
// deadlock. The paced envs keep actors mid-episode when the cancel lands.
func TestTrainAsyncCtxCancellationDrainsActors(t *testing.T) {
	const arms = 3
	agent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{8}, BatchSize: 8, Seed: 5})
	envs := pacedEnvs(4, arms, 31, 200*time.Microsecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan AsyncStats, 1)
	go func() {
		done <- TrainAsyncCtx(ctx, agent, envs, 1_000_000, AsyncConfig{
			Actors: 4, Staleness: 2, Queue: 2, Seed: 11,
		}, nil, nil)
	}()
	select {
	case stats := <-done:
		if stats.Episodes >= 1_000_000 {
			t.Fatalf("cancelled run consumed the whole budget (%d episodes)", stats.Episodes)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("TrainAsyncCtx deadlocked after cancellation")
	}
}

// TestTrainAsyncCtxCompletesNormally: with a background context the ctx
// variant must behave exactly like TrainAsync (full budget consumed).
func TestTrainAsyncCtxCompletesNormally(t *testing.T) {
	const arms = 3
	agent := NewReinforce(arms, arms, ReinforceConfig{Hidden: []int{8}, BatchSize: 8, Seed: 6})
	stats := TrainAsyncCtx(context.Background(), agent, banditEnvs(2, arms, 77), 64, AsyncConfig{
		Actors: 2, Staleness: 2, Seed: 13,
	}, nil, nil)
	if stats.Episodes != 64 {
		t.Fatalf("consumed %d episodes, want 64", stats.Episodes)
	}
}
