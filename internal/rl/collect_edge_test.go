package rl

import (
	"reflect"
	"testing"
)

// TestInterleaveEdgeCases: the deterministic merge must handle ragged,
// empty, and zero-worker inputs — exactly the shapes SplitEpisodes produces
// when episodes don't divide evenly or exceed the worker count.
func TestInterleaveEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   [][]int
		want []int
	}{
		{name: "no workers", in: nil, want: []int{}},
		{name: "empty workers", in: [][]int{{}, {}, {}}, want: []int{}},
		{name: "single worker", in: [][]int{{1, 2, 3}}, want: []int{1, 2, 3}},
		{name: "even round-robin", in: [][]int{{1, 3}, {2, 4}}, want: []int{1, 2, 3, 4}},
		{
			name: "ragged workers skip when exhausted",
			in:   [][]int{{1, 2, 3}, {4}, {}, {5, 6}},
			want: []int{1, 4, 5, 2, 6, 3},
		},
		{
			name: "leading empty worker",
			in:   [][]int{{}, {7, 8}},
			want: []int{7, 8},
		},
		{
			name: "one long tail",
			in:   [][]int{{1}, {2, 3, 4, 5}},
			want: []int{1, 2, 3, 4, 5},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Interleave(c.in)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("Interleave(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

// TestSplitEpisodesEdgeCases: degenerate worker counts and totals must
// produce well-formed shares (length max(workers,1), entries non-negative,
// summing to max(total,0)) so CollectParallel never sees a negative budget.
func TestSplitEpisodesEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		total, workers int
		want           []int
	}{
		{name: "zero workers collapse to one", total: 5, workers: 0, want: []int{5}},
		{name: "negative workers collapse to one", total: 5, workers: -2, want: []int{5}},
		{name: "zero total", total: 0, workers: 3, want: []int{0, 0, 0}},
		{name: "negative total clamps to zero", total: -4, workers: 2, want: []int{0, 0}},
		{name: "fewer episodes than workers", total: 2, workers: 4, want: []int{1, 1, 0, 0}},
		{name: "remainder goes to earlier workers", total: 7, workers: 3, want: []int{3, 2, 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := SplitEpisodes(c.total, c.workers)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("SplitEpisodes(%d, %d) = %v, want %v", c.total, c.workers, got, c.want)
			}
			sum := 0
			for _, n := range got {
				if n < 0 {
					t.Fatalf("negative share in %v", got)
				}
				sum += n
			}
			if want := max(c.total, 0); sum != want {
				t.Fatalf("shares %v sum to %d, want %d", got, sum, want)
			}
		})
	}
}
