package rl

import "math"

// RunningNorm tracks a running mean and variance (Welford's algorithm) and
// standardizes values against them. Agents use it to keep reward signals in a
// trainable range when raw magnitudes drift over a run — the instability
// Section 5.2 of the paper attributes to switching reward ranges.
type RunningNorm struct {
	n    int
	mean float64
	m2   float64
}

// Observe folds a new value into the running statistics.
func (r *RunningNorm) Observe(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count reports how many values have been observed.
func (r *RunningNorm) Count() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *RunningNorm) Mean() float64 { return r.mean }

// Std returns the running standard deviation (0 before two observations).
func (r *RunningNorm) Std() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Normalize standardizes x by the running statistics; before enough data has
// accumulated it returns x unchanged.
func (r *RunningNorm) Normalize(x float64) float64 {
	std := r.Std()
	if std == 0 {
		return x
	}
	return (x - r.mean) / std
}

// Range tracks the min and max of observed values. The cost-model
// bootstrapping agent (Section 5.2) uses two Ranges — one over Phase-1 costs,
// one over Phase-2 latencies — to implement the paper's linear rescaling
//
//	r_l = Cmin + (l − Lmin)/(Lmax − Lmin) · (Cmax − Cmin).
type Range struct {
	n        int
	min, max float64
}

// Observe folds a value into the range.
func (r *Range) Observe(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
}

// Count reports how many values have been observed.
func (r *Range) Count() int { return r.n }

// Min returns the smallest observed value.
func (r *Range) Min() float64 { return r.min }

// Max returns the largest observed value.
func (r *Range) Max() float64 { return r.max }

// Rescale maps x from this range onto dst linearly (the paper's Section 5.2
// formula with dst as the cost range and r as the latency range). Values
// outside the observed range extrapolate linearly; a degenerate source range
// maps everything to dst's midpoint.
func (r *Range) Rescale(x float64, dst *Range) float64 {
	if r.max == r.min {
		return (dst.max + dst.min) / 2
	}
	return dst.min + (x-r.min)/(r.max-r.min)*(dst.max-dst.min)
}
