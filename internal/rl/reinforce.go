package rl

import (
	"fmt"
	"math"
	"math/rand"

	"handsfree/internal/nn"
)

// BaselineKind selects how episode returns become advantages.
type BaselineKind int

const (
	// BaselineBatchStd standardizes returns within each update batch
	// (scale-free; the default).
	BaselineBatchStd BaselineKind = iota
	// BaselineRunningEMA subtracts an exponential moving average of returns
	// WITHOUT rescaling. This mode is deliberately sensitive to the range of
	// the reward signal: it is how the §5.2 bootstrapping experiment exposes
	// the instability caused by switching from cost-range rewards to
	// latency-range rewards.
	BaselineRunningEMA
)

// ReinforceConfig controls a Reinforce agent.
type ReinforceConfig struct {
	Hidden      []int   // hidden layer widths (default 128, 64)
	LR          float64 // learning rate (default 1e-3)
	EntropyCoef float64 // entropy bonus weight (default 0.01)
	BatchSize   int     // episodes per policy update (default 16)
	Clip        float64 // gradient clip norm (default 5; negative disables)
	Baseline    BaselineKind
	EMAAlpha    float64 // EMA smoothing for BaselineRunningEMA (default 0.05)
	// UseSGD selects plain stochastic gradient ascent instead of Adam.
	// Vanilla REINFORCE (Williams '92, the method §2 of the paper describes)
	// is plain gradient ascent and therefore sensitive to the reward scale —
	// the property the §5.2 bootstrapping experiment studies. Adam's
	// per-weight normalization would silently mask reward-range jumps.
	UseSGD bool
	// EntropyDecay anneals the entropy bonus multiplicatively per policy
	// update (1 = no annealing). Long training runs use ≈0.995 so late-stage
	// exploration fades and sampled performance approaches greedy.
	EntropyDecay float64
	// EntropyMin floors the annealed entropy bonus (default EntropyCoef/50).
	EntropyMin float64
	// Precision selects the policy network's scalar type: nn.F64 (the
	// bitwise-deterministic default), nn.F32 (half the memory bandwidth per
	// batched kernel, tolerance-verified against f64), or nn.PrecisionAuto
	// (the HANDSFREE_PRECISION environment variable, defaulting to f64).
	Precision nn.Precision
	// Engine selects the dense-kernel backend: nn.EngineReference (the
	// bitwise-deterministic naive kernels), nn.EngineBlocked (cache-blocked,
	// register-tiled microkernels, tolerance-verified against reference), or
	// nn.EngineAuto (the HANDSFREE_ENGINE environment variable, defaulting
	// to the build's compiled-in engine).
	Engine nn.Engine
	Seed   int64
}

func (c *ReinforceConfig) fill() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.EMAAlpha == 0 {
		c.EMAAlpha = 0.05
	}
	if c.EntropyDecay == 0 {
		c.EntropyDecay = 1
	}
	if c.EntropyMin == 0 {
		c.EntropyMin = c.EntropyCoef / 50
	}
}

// Reinforce is a policy-gradient agent (REINFORCE with a batch baseline and
// entropy regularization). The policy is an MLP producing one logit per
// action; invalid actions are masked out before the softmax, exactly as the
// paper describes for ReJOIN's action layer.
type Reinforce struct {
	Policy *nn.Network
	Opt    nn.Optimizer
	Cfg    ReinforceConfig

	rng     *rand.Rand
	batch   []Trajectory
	ema     float64
	emaOK   bool
	entCoef float64

	// update() scratch, reused across policy updates so steady-state
	// training does not allocate.
	xbuf    nn.Mat
	gradbuf nn.Mat
	probbuf nn.Mat
	masks   [][]bool
	actions []int
	advs    []float64
	// Updates counts completed policy updates.
	Updates int
}

// NewReinforce builds an agent for an environment with the given observation
// and action dimensions.
func NewReinforce(obsDim, actionDim int, cfg ReinforceConfig) *Reinforce {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append(append([]int{obsDim}, cfg.Hidden...), actionDim)
	var opt nn.Optimizer
	if cfg.UseSGD {
		opt = &nn.SGD{LR: cfg.LR, Clip: cfg.Clip}
	} else {
		adam := nn.NewAdam(cfg.LR)
		adam.Clip = cfg.Clip
		opt = adam
	}
	net := nn.NewMLPAt(cfg.Precision, rng, sizes...)
	net.SetEngine(cfg.Engine)
	return &Reinforce{
		Policy:  net,
		Opt:     opt,
		Cfg:     cfg,
		rng:     rng,
		entCoef: cfg.EntropyCoef,
	}
}

// Probs returns the masked action distribution at a state.
func (a *Reinforce) Probs(s State) []float64 {
	logits := a.Policy.Forward(nn.FromVec(s.Features))
	return nn.MaskedSoftmax(logits.Data, s.Mask)
}

// ProbsBatch returns the masked action distribution for a whole batch of
// states in one network pass: row i is Probs(states[i]).
func (a *Reinforce) ProbsBatch(states []State) *nn.Mat {
	x := nn.NewMat(len(states), a.Policy.InDim())
	masks := make([][]bool, len(states))
	for i, s := range states {
		if len(s.Features) != x.Cols {
			panic("rl: ProbsBatch state dimension does not match policy input")
		}
		copy(x.Row(i), s.Features)
		masks[i] = s.Mask
	}
	return nn.MaskedSoftmaxRows(a.Policy.Forward(x), masks)
}

// PolicySnapshot returns an action sampler over a frozen copy of the current
// policy, with its own RNG stream. Snapshots are independent of the live
// agent and of each other, so any number of them may run concurrently (one
// per collection worker) while the original keeps training.
func (a *Reinforce) PolicySnapshot(seed int64) func(State) int {
	net := a.Policy.Clone()
	rng := rand.New(rand.NewSource(seed))
	return func(s State) int {
		logits := net.Forward(nn.FromVec(s.Features))
		return sampleFrom(nn.MaskedSoftmax(logits.Data, s.Mask), rng)
	}
}

// Sample draws an action from the current policy (exploration included).
func (a *Reinforce) Sample(s State) int {
	return sampleFrom(a.Probs(s), a.rng)
}

// Greedy returns the mode of the policy distribution (pure exploitation).
func (a *Reinforce) Greedy(s State) int {
	probs := a.Probs(s)
	best, bestP := -1, -1.0
	for i, p := range probs {
		if s.Mask[i] && p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// MarshalPolicy serializes the policy network (weights and structure). The
// optimizer state and pending batch are not saved: a restored agent resumes
// with fresh optimizer statistics, which matches common checkpointing
// practice for small policy networks.
func (a *Reinforce) MarshalPolicy() ([]byte, error) {
	return a.Policy.MarshalBinary()
}

// UnmarshalPolicy restores a policy saved with MarshalPolicy. The network
// dimensions must match the agent's environment. Checkpoints saved at a
// different precision than the agent's are explicitly converted on load
// (f32→f64 widens exactly; f64→f32 rounds each weight), so old float64 gob
// files keep working after an agent is reconfigured to f32 and vice versa.
func (a *Reinforce) UnmarshalPolicy(data []byte) error {
	net := &nn.Network{}
	if err := net.UnmarshalBinary(data); err != nil {
		return err
	}
	if net.InDim() != a.Policy.InDim() || net.OutDim() != a.Policy.OutDim() {
		return fmt.Errorf("rl: checkpoint dims %dx%d do not match agent %dx%d",
			net.InDim(), net.OutDim(), a.Policy.InDim(), a.Policy.OutDim())
	}
	conv := net.ConvertTo(a.Policy.Precision())
	// Checkpoints do not carry an engine selection; keep the agent's.
	conv.SetEngine(a.Policy.Engine())
	a.Policy = conv
	a.ResetBatch()
	return nil
}

// ResetBatch discards any episodes accumulated toward the next update. Call
// it when the policy network's action space is about to change (curriculum
// phase transitions): pending trajectories recorded under the old action
// space cannot be replayed through the resized network.
func (a *Reinforce) ResetBatch() {
	a.batch = a.batch[:0]
}

// Observe records a finished episode; once a full batch has accumulated, the
// policy is updated and Observe reports true.
func (a *Reinforce) Observe(traj Trajectory) bool {
	a.batch = append(a.batch, traj)
	if len(a.batch) < a.Cfg.BatchSize {
		return false
	}
	a.update()
	a.batch = a.batch[:0]
	return true
}

// ObserveAll feeds a slice of finished episodes (e.g. a merged parallel
// collection round) to the learner in order and reports how many policy
// updates were triggered.
func (a *Reinforce) ObserveAll(trajs []Trajectory) int {
	updates := 0
	for _, t := range trajs {
		if a.Observe(t) {
			updates++
		}
	}
	return updates
}

// update applies one REINFORCE step over the accumulated batch. Advantages
// are the episode returns standardized across the batch (the baseline), which
// keeps the update scale-free — important because raw rewards in query
// optimization span many orders of magnitude.
//
// Every step of every trajectory is stacked into one T×obsDim matrix: a
// single batched forward produces all logits, the masked per-row policy
// gradients are assembled into one T×actionDim matrix, and a single batched
// backward accumulates the parameter gradients. Because forward rows are
// independent and the batched backward accumulates rows in the same order
// the per-step loop did, the update is numerically identical to the
// per-sample path — just one network pass instead of T.
func (a *Reinforce) update() {
	n := len(a.batch)
	if n == 0 {
		return
	}
	mean := 0.0
	for _, t := range a.batch {
		mean += t.Return
	}
	mean /= float64(n)
	variance := 0.0
	for _, t := range a.batch {
		d := t.Return - mean
		variance += d * d
	}
	std := math.Sqrt(variance/float64(n)) + 1e-8

	baseline := mean
	if a.Cfg.Baseline == BaselineRunningEMA {
		if !a.emaOK {
			a.ema = mean
			a.emaOK = true
		}
		baseline = a.ema
		a.ema += a.Cfg.EMAAlpha * (mean - a.ema)
	}

	steps := 0
	for _, t := range a.batch {
		steps += len(t.Steps)
	}
	x := &a.xbuf
	x.Resize(steps, a.Policy.InDim())
	masks := resizeSlice(&a.masks, steps)
	actions := resizeSlice(&a.actions, steps)
	advs := resizeSlice(&a.advs, steps)
	r := 0
	for _, t := range a.batch {
		var adv float64
		if a.Cfg.Baseline == BaselineRunningEMA {
			adv = t.Return - baseline // no rescaling: range-sensitive
		} else {
			adv = (t.Return - mean) / std
		}
		if t.Weight > 0 {
			// Importance weight: stale (off-policy) trajectories contribute a
			// proportionally smaller gradient instead of being dropped.
			adv *= t.Weight
		}
		for _, st := range t.Steps {
			copy(x.Row(r), st.Features)
			masks[r] = st.Mask
			actions[r] = st.Action
			advs[r] = adv
			r++
		}
	}

	logits := a.Policy.Forward(x)
	probs := &a.probbuf
	grad := &a.gradbuf
	// The fused softmax + cross-entropy engine kernel replaces the separate
	// MaskedSoftmaxRowsInto + per-row PolicyGradientInto passes. The REINFORCE
	// interchange math is float64 at every network precision (logits arrive
	// converted), so the kernel instantiates at f64 on the policy's engine;
	// both backends are bitwise identical to the composed helpers.
	nn.NewEngineOf[float64](a.Policy.Engine()).SoftmaxXent(
		logits, masks, actions, advs, a.entCoef, probs, grad)
	a.Policy.ZeroGrad()
	a.Policy.Backward(grad)
	// Scale by batch size so the step magnitude is independent of B.
	a.Policy.DivideGrads(float64(n))
	a.Opt.StepNet(a.Policy)
	a.Updates++
	if a.Cfg.EntropyDecay < 1 {
		a.entCoef *= a.Cfg.EntropyDecay
		if a.entCoef < a.Cfg.EntropyMin {
			a.entCoef = a.Cfg.EntropyMin
		}
	}
}

// resizeSlice grows *s to length n in place, reusing the existing backing
// array when it is large enough, and returns the resized slice. Every element
// is overwritten by the caller, so stale contents are fine.
func resizeSlice[E any](s *[]E, n int) []E {
	if cap(*s) < n {
		*s = make([]E, n)
	}
	*s = (*s)[:n]
	return *s
}

// sampleFrom draws an index from a (possibly unnormalized-by-epsilon)
// probability vector. Falls back to the argmax on numeric trouble.
func sampleFrom(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var c float64
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		last = i
		c += p
		if u < c {
			return i
		}
	}
	return last
}
