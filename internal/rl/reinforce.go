package rl

import (
	"fmt"
	"math"
	"math/rand"

	"handsfree/internal/nn"
)

// BaselineKind selects how episode returns become advantages.
type BaselineKind int

const (
	// BaselineBatchStd standardizes returns within each update batch
	// (scale-free; the default).
	BaselineBatchStd BaselineKind = iota
	// BaselineRunningEMA subtracts an exponential moving average of returns
	// WITHOUT rescaling. This mode is deliberately sensitive to the range of
	// the reward signal: it is how the §5.2 bootstrapping experiment exposes
	// the instability caused by switching from cost-range rewards to
	// latency-range rewards.
	BaselineRunningEMA
)

// ReinforceConfig controls a Reinforce agent.
type ReinforceConfig struct {
	Hidden      []int   // hidden layer widths (default 128, 64)
	LR          float64 // learning rate (default 1e-3)
	EntropyCoef float64 // entropy bonus weight (default 0.01)
	BatchSize   int     // episodes per policy update (default 16)
	Clip        float64 // gradient clip norm (default 5; negative disables)
	Baseline    BaselineKind
	EMAAlpha    float64 // EMA smoothing for BaselineRunningEMA (default 0.05)
	// UseSGD selects plain stochastic gradient ascent instead of Adam.
	// Vanilla REINFORCE (Williams '92, the method §2 of the paper describes)
	// is plain gradient ascent and therefore sensitive to the reward scale —
	// the property the §5.2 bootstrapping experiment studies. Adam's
	// per-weight normalization would silently mask reward-range jumps.
	UseSGD bool
	// EntropyDecay anneals the entropy bonus multiplicatively per policy
	// update (1 = no annealing). Long training runs use ≈0.995 so late-stage
	// exploration fades and sampled performance approaches greedy.
	EntropyDecay float64
	// EntropyMin floors the annealed entropy bonus (default EntropyCoef/50).
	EntropyMin float64
	Seed       int64
}

func (c *ReinforceConfig) fill() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.EMAAlpha == 0 {
		c.EMAAlpha = 0.05
	}
	if c.EntropyDecay == 0 {
		c.EntropyDecay = 1
	}
	if c.EntropyMin == 0 {
		c.EntropyMin = c.EntropyCoef / 50
	}
}

// Reinforce is a policy-gradient agent (REINFORCE with a batch baseline and
// entropy regularization). The policy is an MLP producing one logit per
// action; invalid actions are masked out before the softmax, exactly as the
// paper describes for ReJOIN's action layer.
type Reinforce struct {
	Policy *nn.Network
	Opt    nn.Optimizer
	Cfg    ReinforceConfig

	rng     *rand.Rand
	batch   []Trajectory
	ema     float64
	emaOK   bool
	entCoef float64
	// Updates counts completed policy updates.
	Updates int
}

// NewReinforce builds an agent for an environment with the given observation
// and action dimensions.
func NewReinforce(obsDim, actionDim int, cfg ReinforceConfig) *Reinforce {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append(append([]int{obsDim}, cfg.Hidden...), actionDim)
	var opt nn.Optimizer
	if cfg.UseSGD {
		opt = &nn.SGD{LR: cfg.LR, Clip: cfg.Clip}
	} else {
		adam := nn.NewAdam(cfg.LR)
		adam.Clip = cfg.Clip
		opt = adam
	}
	return &Reinforce{
		Policy:  nn.NewMLP(rng, sizes...),
		Opt:     opt,
		Cfg:     cfg,
		rng:     rng,
		entCoef: cfg.EntropyCoef,
	}
}

// Probs returns the masked action distribution at a state.
func (a *Reinforce) Probs(s State) []float64 {
	logits := a.Policy.Forward(nn.FromVec(s.Features))
	return nn.MaskedSoftmax(logits.Data, s.Mask)
}

// Sample draws an action from the current policy (exploration included).
func (a *Reinforce) Sample(s State) int {
	return sampleFrom(a.Probs(s), a.rng)
}

// Greedy returns the mode of the policy distribution (pure exploitation).
func (a *Reinforce) Greedy(s State) int {
	probs := a.Probs(s)
	best, bestP := -1, -1.0
	for i, p := range probs {
		if s.Mask[i] && p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// MarshalPolicy serializes the policy network (weights and structure). The
// optimizer state and pending batch are not saved: a restored agent resumes
// with fresh optimizer statistics, which matches common checkpointing
// practice for small policy networks.
func (a *Reinforce) MarshalPolicy() ([]byte, error) {
	return a.Policy.MarshalBinary()
}

// UnmarshalPolicy restores a policy saved with MarshalPolicy. The network
// dimensions must match the agent's environment.
func (a *Reinforce) UnmarshalPolicy(data []byte) error {
	net := &nn.Network{}
	if err := net.UnmarshalBinary(data); err != nil {
		return err
	}
	if net.InDim() != a.Policy.InDim() || net.OutDim() != a.Policy.OutDim() {
		return fmt.Errorf("rl: checkpoint dims %dx%d do not match agent %dx%d",
			net.InDim(), net.OutDim(), a.Policy.InDim(), a.Policy.OutDim())
	}
	a.Policy = net
	a.ResetBatch()
	return nil
}

// ResetBatch discards any episodes accumulated toward the next update. Call
// it when the policy network's action space is about to change (curriculum
// phase transitions): pending trajectories recorded under the old action
// space cannot be replayed through the resized network.
func (a *Reinforce) ResetBatch() {
	a.batch = a.batch[:0]
}

// Observe records a finished episode; once a full batch has accumulated, the
// policy is updated and Observe reports true.
func (a *Reinforce) Observe(traj Trajectory) bool {
	a.batch = append(a.batch, traj)
	if len(a.batch) < a.Cfg.BatchSize {
		return false
	}
	a.update()
	a.batch = a.batch[:0]
	return true
}

// update applies one REINFORCE step over the accumulated batch. Advantages
// are the episode returns standardized across the batch (the baseline), which
// keeps the update scale-free — important because raw rewards in query
// optimization span many orders of magnitude.
func (a *Reinforce) update() {
	n := len(a.batch)
	if n == 0 {
		return
	}
	mean := 0.0
	for _, t := range a.batch {
		mean += t.Return
	}
	mean /= float64(n)
	variance := 0.0
	for _, t := range a.batch {
		d := t.Return - mean
		variance += d * d
	}
	std := math.Sqrt(variance/float64(n)) + 1e-8

	baseline := mean
	if a.Cfg.Baseline == BaselineRunningEMA {
		if !a.emaOK {
			a.ema = mean
			a.emaOK = true
		}
		baseline = a.ema
		a.ema += a.Cfg.EMAAlpha * (mean - a.ema)
	}

	a.Policy.ZeroGrad()
	for _, t := range a.batch {
		var adv float64
		if a.Cfg.Baseline == BaselineRunningEMA {
			adv = t.Return - baseline // no rescaling: range-sensitive
		} else {
			adv = (t.Return - mean) / std
		}
		for _, st := range t.Steps {
			logits := a.Policy.Forward(nn.FromVec(st.Features))
			probs := nn.MaskedSoftmax(logits.Data, st.Mask)
			grad := nn.PolicyGradient(probs, st.Mask, st.Action, adv, a.entCoef)
			a.Policy.Backward(&nn.Mat{Rows: 1, Cols: len(grad), Data: grad})
		}
	}
	// Scale by batch size so the step magnitude is independent of B.
	for _, p := range a.Policy.Params() {
		for i := range p.Grad {
			p.Grad[i] /= float64(n)
		}
	}
	a.Opt.Step(a.Policy.Params())
	a.Updates++
	if a.Cfg.EntropyDecay < 1 {
		a.entCoef *= a.Cfg.EntropyDecay
		if a.entCoef < a.Cfg.EntropyMin {
			a.entCoef = a.Cfg.EntropyMin
		}
	}
}

// sampleFrom draws an index from a (possibly unnormalized-by-epsilon)
// probability vector. Falls back to the argmax on numeric trouble.
func sampleFrom(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var c float64
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		last = i
		c += p
		if u < c {
			return i
		}
	}
	return last
}
