package rl

import "sync"

// This file implements parallel episode collection: N worker environments
// stepping frozen policy snapshots concurrently, with the collected
// trajectories merged deterministically. Determinism comes from structure,
// not luck: every worker owns its environment and its policy snapshot
// (seeded per worker), workers never share mutable state, and the merge
// order is a pure function of worker/episode indices — so a collection run
// produces identical output regardless of goroutine scheduling.

// CollectParallel drives each (env, policy) pair on its own goroutine:
// worker w runs perWorker[w] episodes of envs[w] under policies[w], each
// episode bounded by maxSteps. The optional after hook runs on the worker
// goroutine immediately after each episode finishes and before the next
// Reset — the place to capture per-episode environment state (last plan,
// cost, outcome); it must touch only worker-local state.
//
// The per-worker trajectory slices are returned; Interleave merges them into
// a single deterministic order.
func CollectParallel(envs []Env, policies []func(State) int, perWorker []int, maxSteps int, after func(worker, episode int, traj Trajectory)) [][]Trajectory {
	if len(envs) != len(policies) || len(envs) != len(perWorker) {
		panic("rl: CollectParallel envs, policies and perWorker must have equal length")
	}
	out := make([][]Trajectory, len(envs))
	var wg sync.WaitGroup
	for w := range envs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trajs := make([]Trajectory, 0, perWorker[w])
			for ep := 0; ep < perWorker[w]; ep++ {
				traj := RunEpisode(envs[w], policies[w], maxSteps)
				if after != nil {
					after(w, ep, traj)
				}
				trajs = append(trajs, traj)
			}
			out[w] = trajs
		}(w)
	}
	wg.Wait()
	return out
}

// Interleave merges per-worker slices round-robin: element e of worker 0,
// element e of worker 1, …, then e+1. Ragged inputs are fine — exhausted
// workers are skipped. The result order depends only on the input structure,
// which makes merged parallel collections reproducible.
func Interleave[T any](perWorker [][]T) []T {
	total := 0
	longest := 0
	for _, s := range perWorker {
		total += len(s)
		if len(s) > longest {
			longest = len(s)
		}
	}
	out := make([]T, 0, total)
	for e := 0; e < longest; e++ {
		for _, s := range perWorker {
			if e < len(s) {
				out = append(out, s[e])
			}
		}
	}
	return out
}

// SplitEpisodes divides total episodes across workers as evenly as possible
// (earlier workers take the remainder). Non-positive worker counts are
// treated as one worker; a non-positive total yields all-zero shares.
func SplitEpisodes(total, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	if total < 0 {
		total = 0
	}
	per := make([]int, workers)
	base := total / workers
	rem := total % workers
	for w := range per {
		per[w] = base
		if w < rem {
			per[w]++
		}
	}
	return per
}
