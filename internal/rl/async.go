package rl

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"handsfree/internal/nn"
	"handsfree/internal/paramserver"
)

// This file implements the asynchronous actor-learner training split.
// Parallel collection (collect.go) keeps a synchronous round barrier: every
// policy-batch round freezes a snapshot, fans out workers, and joins before
// the next update, so the learner idles while the slowest actor finishes.
// TrainAsync removes the barrier: actor goroutines continuously collect
// episodes against their latest-fetched snapshot from a lock-free parameter
// server and push trajectories into a bounded channel, while the learner
// drains them, applies batched REINFORCE updates, and republishes. The price
// is bounded off-policy staleness (an actor's snapshot may lag the learner
// by up to K versions) and the loss of bitwise determinism — the synchronous
// path remains the deterministic reference implementation.

// AsyncConfig configures TrainAsync.
type AsyncConfig struct {
	// Actors is the number of concurrent actor goroutines (and environment
	// replicas). Default: runtime.GOMAXPROCS(0).
	Actors int
	// Staleness is K, the maximum number of snapshot versions an actor's
	// policy may lag the server at episode start; actors lagging more
	// refetch before collecting. 0 selects the default of 4; use 1 for the
	// tightest useful bound (an actor mid-episode is always at least
	// momentarily behind a concurrent publish).
	Staleness int
	// Queue is the trajectory channel capacity (default 4×Actors). A
	// bounded queue applies backpressure: when the learner falls behind,
	// actors block on the send instead of piling up arbitrarily stale
	// trajectories.
	Queue int
	// MaxSteps bounds episode length (default 128).
	MaxSteps int
	// DropStale makes the learner discard trajectories whose snapshot is
	// more than Staleness versions behind the server at consumption time,
	// instead of learning from them. Dropped episodes still count toward
	// the episode budget and are still reported to the episode callback
	// (with Dropped set).
	DropStale bool
	// WeightStale importance-weights over-stale trajectories instead of
	// discarding them: a trajectory consumed L > Staleness versions behind
	// the server has its advantage scaled by StaleDecay^(L−Staleness) before
	// the policy update, so re-training under live serving traffic wastes no
	// collected experience while trusting stale experience less. When both
	// are set, WeightStale wins over DropStale.
	WeightStale bool
	// StaleDecay is the per-excess-version weight decay for WeightStale
	// (default 0.7).
	StaleDecay float64
	// AdaptStaleness turns the fixed bound K into a ceiling for an adaptive
	// bound: every AdaptWindow consumed episodes the learner compares the
	// observed actor lag against the current bound and tightens it by one
	// (down to MinStaleness) when actors ride the bound — the signature of a
	// learner publishing faster than actors collect — or relaxes it by one
	// (back up to Staleness) when publishes are rare and the bound is slack.
	// Tight bounds keep training data near-on-policy exactly when
	// off-policyness is accumulating fastest, at the price of more snapshot
	// refetches.
	AdaptStaleness bool
	// MinStaleness floors the adaptive bound (default 1; ignored unless
	// AdaptStaleness).
	MinStaleness int
	// AdaptWindow is how many consumed episodes pass between adaptive-bound
	// reevaluations (default 16; ignored unless AdaptStaleness).
	AdaptWindow int
	// Seed derives the per-actor action-sampling RNG streams.
	Seed int64
	// OnPublish, when non-nil, runs after every snapshot publish with the
	// new version (the plan-cache epoch bump hook).
	OnPublish func(version uint64)
}

func (c *AsyncConfig) fill() {
	if c.Actors < 1 {
		c.Actors = runtime.GOMAXPROCS(0)
	}
	if c.Staleness == 0 {
		c.Staleness = 4
	}
	if c.Staleness < 0 {
		c.Staleness = 0
	}
	if c.Queue < 1 {
		c.Queue = 4 * c.Actors
	}
	if c.MaxSteps < 1 {
		c.MaxSteps = 128
	}
	if c.MinStaleness < 1 {
		c.MinStaleness = 1
	}
	if c.MinStaleness > c.Staleness {
		c.MinStaleness = c.Staleness
	}
	if c.AdaptWindow < 1 {
		c.AdaptWindow = 16
	}
	if c.StaleDecay <= 0 || c.StaleDecay >= 1 {
		c.StaleDecay = 0.7
	}
}

// AsyncEpisode is one episode delivered from an actor to the learner.
type AsyncEpisode struct {
	Traj Trajectory
	// Worker is the actor that collected the episode; Seq is the actor's
	// own episode counter. (Worker, Seq) pairs are unique, but arrival
	// order across workers is scheduling-dependent.
	Worker int
	Seq    int
	// Version is the snapshot version the episode was collected under.
	Version uint64
	// Lag is the staleness (server version at episode start minus Version)
	// the actor observed; the staleness bound guarantees Lag ≤ K.
	Lag uint64
	// Out is whatever the after hook returned for this episode (nil
	// without a hook) — the environment outcome captured worker-side.
	Out any
	// Dropped marks episodes the learner discarded under DropStale.
	Dropped bool
	// Weighted marks episodes that were importance-weighted under
	// WeightStale; Traj.Weight carries the applied weight.
	Weighted bool
}

// AsyncStats summarizes one TrainAsync run.
type AsyncStats struct {
	// Episodes is the number of episodes consumed by the learner (== the
	// budget, unless a TrainAsyncCtx cancellation returned early).
	Episodes int
	// Updates is how many policy updates the learner applied.
	Updates int
	// Publishes is how many snapshots the learner published (excluding the
	// initial version-0 snapshot).
	Publishes uint64
	// Dropped counts episodes discarded under DropStale.
	Dropped int
	// Weighted counts episodes importance-weighted under WeightStale.
	Weighted int
	// MaxLag is the largest staleness any actor acted on; the staleness
	// bound guarantees MaxLag ≤ K.
	MaxLag uint64
	// Refetches counts staleness-bound-forced snapshot refetches across
	// all actors.
	Refetches uint64
	// FinalStaleness is the staleness bound in force when training finished
	// (== Staleness unless AdaptStaleness adjusted it).
	FinalStaleness int
	// Tightened and Loosened count adaptive-bound adjustments in each
	// direction (zero unless AdaptStaleness).
	Tightened, Loosened int
}

// TrainAsync trains learner with the asynchronous actor-learner split: one
// actor goroutine per environment in envs, each continuously collecting
// episodes against its latest-fetched policy snapshot from a lock-free
// parameter server, with the learner (on the calling goroutine) draining
// the bounded trajectory queue, folding episodes into policy-batch updates
// via Observe, and republishing a fresh snapshot after every update.
//
// Environments must be independent replicas: each is owned by exactly one
// actor goroutine. The optional after hook runs on the actor goroutine
// immediately after each episode, before the trajectory is queued — the
// place to capture per-episode environment state (last plan, cost, outcome);
// it must touch only worker-local state, and its return value travels to the
// learner as AsyncEpisode.Out. The optional onEpisode callback runs on the
// calling goroutine for every consumed episode, in consumption order.
//
// TrainAsync returns once exactly `episodes` episodes have been collected
// and consumed. A trailing partial policy batch stays pending inside the
// learner, exactly as in sequential training.
func TrainAsync(learner *Reinforce, envs []Env, episodes int, cfg AsyncConfig,
	after func(worker, seq int, traj Trajectory) any,
	onEpisode func(e AsyncEpisode)) AsyncStats {
	return TrainAsyncCtx(context.Background(), learner, envs, episodes, cfg, after, onEpisode)
}

// TrainAsyncCtx is TrainAsync under a request-scoped context: when ctx is
// cancelled (or its deadline passes) the learner stops consuming, the actors
// are told to stop at their next ticket draw, any in-flight trajectories are
// drained and discarded, and the call returns early with
// AsyncStats.Episodes reporting how many episodes were actually consumed
// (less than the budget on cancellation). The learner's pending partial
// batch is preserved, exactly as on a normal return.
func TrainAsyncCtx(ctx context.Context, learner *Reinforce, envs []Env, episodes int, cfg AsyncConfig,
	after func(worker, seq int, traj Trajectory) any,
	onEpisode func(e AsyncEpisode)) AsyncStats {
	cfg.fill()
	if len(envs) == 0 {
		panic("rl: TrainAsync needs at least one environment")
	}
	if episodes <= 0 {
		return AsyncStats{}
	}

	srv := paramserver.New(learner.Policy.CloneForInference())
	srv.OnPublish = cfg.OnPublish
	// The staleness bound actors consult: fixed at K, or a shared dynamic
	// bound starting at K that the learner adjusts from observed lag.
	bound := paramserver.NewDynBound(cfg.Staleness)

	type actorReport struct {
		maxLag    uint64
		refetches uint64
	}
	reports := make([]actorReport, len(envs))
	ch := make(chan AsyncEpisode, cfg.Queue)
	var tickets atomic.Int64
	var wg sync.WaitGroup
	for w := range envs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000*int64(w+1)))
			// Per-actor logits buffer for packed inference: snapshots pack
			// their weight panels once per publish (paramserver.Snapshot.Packed)
			// and every actor episode reuses this one output buffer, so the
			// sampling hot path allocates nothing in steady state.
			var logits nn.Mat
			var client *paramserver.Client
			if cfg.AdaptStaleness {
				client = srv.NewClientDyn(bound)
			} else {
				client = srv.NewClient(cfg.Staleness)
			}
			defer func() {
				reports[w] = actorReport{maxLag: client.MaxLag(), refetches: client.Refetches()}
			}()
			for seq := 0; ; seq++ {
				if tickets.Add(1) > int64(episodes) {
					return
				}
				snap, lag := client.Snapshot()
				packed := snap.Packed()
				choose := func(s State) int {
					packed.InferVec(s.Features, &logits)
					return sampleFrom(nn.MaskedSoftmax(logits.Data, s.Mask), rng)
				}
				traj := RunEpisode(envs[w], choose, cfg.MaxSteps)
				e := AsyncEpisode{Traj: traj, Worker: w, Seq: seq, Version: snap.Version, Lag: lag}
				if after != nil {
					e.Out = after(w, seq, traj)
				}
				ch <- e
			}
		}(w)
	}

	startUpdates := learner.Updates
	var stats AsyncStats
	var winLag uint64
	winEpisodes := 0
	consumed := 0
learn:
	for received := 0; received < episodes; received++ {
		var e AsyncEpisode
		select {
		case e = <-ch:
		case <-ctx.Done():
			break learn
		}
		consumed++
		// Consumption-time staleness: how many versions the learner published
		// between this episode's snapshot and now (collection lag plus queue
		// aging) — the direct measure of the learner outpacing the actors,
		// and the quantity the DropStale check bounds.
		consumeLag := srv.Version() - e.Version
		switch {
		case consumeLag > uint64(cfg.Staleness) && cfg.WeightStale:
			e.Traj.Weight = math.Pow(cfg.StaleDecay, float64(consumeLag-uint64(cfg.Staleness)))
			e.Weighted = true
			stats.Weighted++
			if learner.Observe(e.Traj) {
				srv.Publish(learner.Policy.CloneForInference(), learner.Updates)
			}
		case consumeLag > uint64(cfg.Staleness) && cfg.DropStale:
			e.Dropped = true
			stats.Dropped++
		default:
			if learner.Observe(e.Traj) {
				srv.Publish(learner.Policy.CloneForInference(), learner.Updates)
			}
		}
		if cfg.AdaptStaleness {
			winLag += consumeLag
			winEpisodes++
			if winEpisodes >= cfg.AdaptWindow {
				k := bound.Get()
				// Episodes arriving ≥ K/2 versions old mean the learner is
				// publishing faster than actors deliver: tighten so actors
				// refetch sooner and training data stays near-on-policy.
				// Episodes arriving ≤ K/4 old mean publishes are rare: relax
				// back toward the configured ceiling.
				if 2*winLag >= uint64(k)*uint64(winEpisodes) && k > cfg.MinStaleness {
					bound.Set(k - 1)
					stats.Tightened++
				} else if 4*winLag <= uint64(k)*uint64(winEpisodes) && k < cfg.Staleness {
					bound.Set(k + 1)
					stats.Loosened++
				}
				winLag, winEpisodes = 0, 0
			}
		}
		if onEpisode != nil {
			onEpisode(e)
		}
	}
	// On a normal return every collected episode holds a ticket ≤ episodes
	// and has been consumed above, so no actor is blocked on the queue and
	// they all exit at their next ticket draw. On cancellation, exhaust the
	// ticket supply so no actor starts another episode, then drain (and
	// discard) in-flight trajectories until every actor has exited — an
	// actor blocked on the queue send must be unblocked before wg.Wait can
	// return.
	tickets.Store(int64(episodes))
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
drain:
	for {
		select {
		case <-ch:
		case <-drained:
			break drain
		}
	}

	stats.Episodes = consumed
	stats.Updates = learner.Updates - startUpdates
	stats.Publishes = srv.Stats().Publishes
	stats.FinalStaleness = bound.Get()
	for _, r := range reports {
		if r.maxLag > stats.MaxLag {
			stats.MaxLag = r.maxLag
		}
		stats.Refetches += r.refetches
	}
	return stats
}
