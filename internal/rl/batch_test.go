package rl

import (
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/nn"
)

// fillBuffer adds n random reward-prediction samples over obsDim/actions.
func fillBuffer(buf *ReplayBuffer, n, obsDim, actions int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		f := make([]float64, obsDim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		mask := make([]bool, actions)
		valid := 0
		for j := range mask {
			mask[j] = rng.Intn(3) > 0
			if mask[j] {
				valid++
			}
		}
		a := rng.Intn(actions)
		mask[a] = true
		buf.Add(Sample{Features: f, Mask: mask, Action: a, Target: rng.NormFloat64() * 2})
	}
}

// trainPerSampleReference replicates the pre-batching QAgent.Train loop:
// one 1×d forward/backward per sample. It must consume the agent's RNG
// exactly like Train does so both paths see the same minibatch.
func trainPerSampleReference(q *QAgent, buf *ReplayBuffer, batchSize int) float64 {
	batch := buf.Sample(batchSize, q.rng)
	q.Net.ZeroGrad()
	var total float64
	for _, s := range batch {
		pred := q.Net.Forward(nn.FromVec(s.Features)).Data
		grad := make([]float64, len(pred))
		d := pred[s.Action] - s.Target
		const delta = 1.0
		if math.Abs(d) <= delta {
			total += 0.5 * d * d
			grad[s.Action] = d
		} else {
			total += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad[s.Action] = delta
			} else {
				grad[s.Action] = -delta
			}
		}
		q.Net.Backward(&nn.Mat{Rows: 1, Cols: len(grad), Data: grad})
	}
	for _, p := range q.Net.Params() {
		for i := range p.Grad {
			p.Grad[i] /= float64(len(batch))
		}
	}
	q.Opt.Step(q.Net.Params())
	return total / float64(len(batch))
}

// trainMarginPerSampleReference replicates the pre-batching TrainMargin loop.
func trainMarginPerSampleReference(q *QAgent, buf *ReplayBuffer, batchSize int, margin, marginWeight float64) float64 {
	batch := buf.Sample(batchSize, q.rng)
	q.Net.ZeroGrad()
	var total float64
	for _, s := range batch {
		pred := q.Net.Forward(nn.FromVec(s.Features)).Data
		grad := make([]float64, len(pred))
		d := pred[s.Action] - s.Target
		const delta = 1.0
		if math.Abs(d) <= delta {
			total += 0.5 * d * d
			grad[s.Action] = d
		} else {
			total += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad[s.Action] = delta
			} else {
				grad[s.Action] = -delta
			}
		}
		if len(s.Mask) == len(pred) {
			comp, compV := -1, math.Inf(1)
			for i, ok := range s.Mask {
				if !ok || i == s.Action {
					continue
				}
				if pred[i] < compV {
					comp, compV = i, pred[i]
				}
			}
			if comp >= 0 {
				violation := pred[s.Action] - (compV - margin)
				if violation > 0 {
					total += marginWeight * violation
					grad[s.Action] += marginWeight
					grad[comp] -= marginWeight
				}
			}
		}
		q.Net.Backward(&nn.Mat{Rows: 1, Cols: len(grad), Data: grad})
	}
	for _, p := range q.Net.Params() {
		for i := range p.Grad {
			p.Grad[i] /= float64(len(batch))
		}
	}
	q.Opt.Step(q.Net.Params())
	return total / float64(len(batch))
}

func maxParamDiff(a, b *nn.Network) float64 {
	av, bv := a.FlattenParams(), b.FlattenParams()
	var worst float64
	for i := range av {
		if d := math.Abs(av[i] - bv[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBatchedTrainMatchesPerSample trains two identically seeded agents on
// the same buffer — one with the batched Train, one with the per-sample
// reference — and requires their parameters to agree within 1e-9 after
// several minibatches (the paths are accumulation-order identical, so the
// difference should in fact be zero).
func TestBatchedTrainMatchesPerSample(t *testing.T) {
	const obsDim, actions = 24, 10
	cases := []struct {
		name string
		step func(q *QAgent, buf *ReplayBuffer) float64
		ref  func(q *QAgent, buf *ReplayBuffer) float64
	}{
		{
			name: "huber",
			step: func(q *QAgent, buf *ReplayBuffer) float64 { return q.Train(buf, 32) },
			ref:  func(q *QAgent, buf *ReplayBuffer) float64 { return trainPerSampleReference(q, buf, 32) },
		},
		{
			name: "margin",
			step: func(q *QAgent, buf *ReplayBuffer) float64 { return q.TrainMargin(buf, 32, 0.3, 1.0) },
			ref: func(q *QAgent, buf *ReplayBuffer) float64 {
				return trainMarginPerSampleReference(q, buf, 32, 0.3, 1.0)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := NewReplayBuffer(4096)
			fillBuffer(buf, 512, obsDim, actions, rand.New(rand.NewSource(1)))
			// The per-sample reference helpers drive Params()/Opt.Step
			// directly, which is the float64 deterministic contract; the f32
			// path is covered by the tolerance-parity tests instead.
			batched := NewQAgent(obsDim, actions, QAgentConfig{Hidden: []int{32, 16}, Precision: nn.F64, Seed: 9})
			reference := NewQAgent(obsDim, actions, QAgentConfig{Hidden: []int{32, 16}, Precision: nn.F64, Seed: 9})
			for step := 0; step < 20; step++ {
				lb := tc.step(batched, buf)
				lr := tc.ref(reference, buf)
				if math.Abs(lb-lr) > 1e-9 {
					t.Fatalf("step %d: batched loss %v vs per-sample loss %v", step, lb, lr)
				}
			}
			if d := maxParamDiff(batched.Net, reference.Net); d > 1e-9 {
				t.Fatalf("parameters diverged by %v after 20 steps, want ≤ 1e-9", d)
			}
		})
	}
}

// TestPredictBatchMatchesPredict checks row-for-row agreement between the
// batched and single-state inference paths.
func TestPredictBatchMatchesPredict(t *testing.T) {
	const obsDim, actions = 17, 6
	// Pin the reference engine: the 1e-9 batch-vs-single agreement assumes
	// both paths accumulate in the same order, which the blocked engine's
	// batched GEMM does not (its tolerance is owned by the nn parity tests).
	agent := NewQAgent(obsDim, actions, QAgentConfig{Hidden: []int{20}, Seed: 2, Engine: nn.EngineReference})
	rng := rand.New(rand.NewSource(3))
	states := make([]State, 13)
	for i := range states {
		f := make([]float64, obsDim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		states[i] = State{Features: f}
	}
	// Clone: PredictBatch returns the network's reusable forward buffer,
	// and the per-state Predict calls below overwrite it.
	batch := agent.PredictBatch(states).Clone()
	for i, s := range states {
		single := agent.Predict(s)
		for j := range single {
			if math.Abs(batch.At(i, j)-single[j]) > 1e-9 {
				t.Fatalf("state %d action %d: batch %v vs single %v", i, j, batch.At(i, j), single[j])
			}
		}
	}
}

// TestProbsBatchMatchesProbs checks the batched policy distribution path.
func TestProbsBatchMatchesProbs(t *testing.T) {
	const obsDim, actions = 11, 5
	agent := NewReinforce(obsDim, actions, ReinforceConfig{Hidden: []int{16}, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	states := make([]State, 9)
	for i := range states {
		f := make([]float64, obsDim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		mask := make([]bool, actions)
		for j := range mask {
			mask[j] = rng.Intn(2) == 0
		}
		mask[rng.Intn(actions)] = true
		states[i] = State{Features: f, Mask: mask}
	}
	batch := agent.ProbsBatch(states)
	for i, s := range states {
		single := agent.Probs(s)
		for j := range single {
			if math.Abs(batch.At(i, j)-single[j]) > 1e-9 {
				t.Fatalf("state %d action %d: batch %v vs single %v", i, j, batch.At(i, j), single[j])
			}
		}
	}
}

// reinforceUpdateReference replicates the pre-batching REINFORCE update:
// one 1×d forward/backward per recorded step.
func reinforceUpdateReference(a *Reinforce) {
	n := len(a.batch)
	if n == 0 {
		return
	}
	mean := 0.0
	for _, t := range a.batch {
		mean += t.Return
	}
	mean /= float64(n)
	variance := 0.0
	for _, t := range a.batch {
		d := t.Return - mean
		variance += d * d
	}
	std := math.Sqrt(variance/float64(n)) + 1e-8

	baseline := mean
	if a.Cfg.Baseline == BaselineRunningEMA {
		if !a.emaOK {
			a.ema = mean
			a.emaOK = true
		}
		baseline = a.ema
		a.ema += a.Cfg.EMAAlpha * (mean - a.ema)
	}

	a.Policy.ZeroGrad()
	for _, t := range a.batch {
		var adv float64
		if a.Cfg.Baseline == BaselineRunningEMA {
			adv = t.Return - baseline
		} else {
			adv = (t.Return - mean) / std
		}
		for _, st := range t.Steps {
			logits := a.Policy.Forward(nn.FromVec(st.Features))
			probs := nn.MaskedSoftmax(logits.Data, st.Mask)
			grad := nn.PolicyGradient(probs, st.Mask, st.Action, adv, a.entCoef)
			a.Policy.Backward(&nn.Mat{Rows: 1, Cols: len(grad), Data: grad})
		}
	}
	for _, p := range a.Policy.Params() {
		for i := range p.Grad {
			p.Grad[i] /= float64(n)
		}
	}
	a.Opt.Step(a.Policy.Params())
	a.Updates++
}

// TestBatchedReinforceUpdateMatchesPerSample feeds identical trajectory
// batches to two identically seeded agents — one updating through the
// batched path, one through the per-sample reference — and requires the
// resulting policies to agree within 1e-9.
func TestBatchedReinforceUpdateMatchesPerSample(t *testing.T) {
	env := &chainEnv{}
	// Pinned to f64: the reference path drives Params()/Opt.Step directly.
	cfg := ReinforceConfig{Hidden: []int{16, 8}, BatchSize: 8, Precision: nn.F64, Seed: 6}
	batched := NewReinforce(env.ObsDim(), env.ActionDim(), cfg)
	reference := NewReinforce(env.ObsDim(), env.ActionDim(), cfg)

	for round := 0; round < 6; round++ {
		// Trajectories are collected once (with the batched agent's sampler)
		// and fed identically to both learners; update() itself draws no
		// randomness, so the reference needs no RNG alignment.
		var trajs []Trajectory
		for i := 0; i < cfg.BatchSize; i++ {
			trajs = append(trajs, RunEpisode(env, batched.Sample, 10))
		}
		for _, traj := range trajs {
			batched.Observe(traj)
		}
		reference.batch = append(reference.batch[:0], trajs...)
		reinforceUpdateReference(reference)
		reference.batch = reference.batch[:0]

		if d := maxParamDiff(batched.Policy, reference.Policy); d > 1e-9 {
			t.Fatalf("round %d: policies diverged by %v, want ≤ 1e-9", round, d)
		}
	}
}

// TestBestFallsBackToFirstValid is the regression test for Best returning -1
// when every prediction is +Inf/NaN: it must return the first valid action
// instead. An all-false mask still reports -1 (no action exists).
func TestBestFallsBackToFirstValid(t *testing.T) {
	agent := NewQAgent(4, 4, QAgentConfig{Hidden: []int{8}, Precision: nn.F64, Seed: 7})
	// Poison the network so every prediction is NaN.
	for _, p := range agent.Net.Params() {
		for i := range p.Value {
			p.Value[i] = math.NaN()
		}
	}
	s := State{Features: []float64{1, 0, 0, 0}, Mask: []bool{false, true, true, false}}
	if got := agent.Best(s); got != 1 {
		t.Fatalf("Best with all-NaN predictions = %d, want first valid action 1", got)
	}
	// +Inf predictions: same fallback.
	for _, p := range agent.Net.Params() {
		for i := range p.Value {
			p.Value[i] = 0
		}
	}
	out := agent.Net.Params()[len(agent.Net.Params())-1]
	for i := range out.Value {
		out.Value[i] = math.Inf(1)
	}
	if got := agent.Best(s); got != 1 {
		t.Fatalf("Best with all-Inf predictions = %d, want first valid action 1", got)
	}
	if got := agent.Best(State{Features: []float64{1, 0, 0, 0}, Mask: []bool{false, false, false, false}}); got != -1 {
		t.Fatalf("Best with all-false mask = %d, want -1", got)
	}
	// Act must also return a usable action under a poisoned network.
	if got := agent.Act(s); got != 1 && got != 2 {
		t.Fatalf("Act with poisoned network = %d, want a valid action", got)
	}
}

// TestSampleIntoReusesBacking verifies SampleInto fills a caller-owned slice
// without fresh allocation and draws the same sequence as Sample.
func TestSampleIntoReusesBacking(t *testing.T) {
	buf := NewReplayBuffer(64)
	fillBuffer(buf, 64, 3, 2, rand.New(rand.NewSource(8)))
	a := buf.Sample(16, rand.New(rand.NewSource(9)))
	scratch := make([]Sample, 0, 16)
	b := buf.SampleInto(scratch, 16, rand.New(rand.NewSource(9)))
	if &b[0] != &scratch[:1][0] {
		t.Fatal("SampleInto did not reuse the caller's backing array")
	}
	for i := range a {
		if a[i].Target != b[i].Target {
			t.Fatalf("sample %d: Sample and SampleInto drew different elements", i)
		}
	}
}

// TestCollectParallelDeterministic runs the same parallel collection twice
// and requires identical merged trajectories, regardless of scheduling.
func TestCollectParallelDeterministic(t *testing.T) {
	collect := func() []Trajectory {
		workers := 4
		envs := make([]Env, workers)
		policies := make([]func(State) int, workers)
		for w := 0; w < workers; w++ {
			envs[w] = &banditEnv{rng: rand.New(rand.NewSource(int64(100 + w))), arms: 5}
			policies[w] = RandomPolicy(int64(200 + w))
		}
		per := SplitEpisodes(18, workers)
		return Interleave(CollectParallel(envs, policies, per, 10, nil))
	}
	a, b := collect(), collect()
	if len(a) != 18 || len(b) != 18 {
		t.Fatalf("collected %d and %d episodes, want 18", len(a), len(b))
	}
	for i := range a {
		if a[i].Return != b[i].Return || len(a[i].Steps) != len(b[i].Steps) {
			t.Fatalf("episode %d differs between identical collection runs", i)
		}
		for j := range a[i].Steps {
			if a[i].Steps[j].Action != b[i].Steps[j].Action {
				t.Fatalf("episode %d step %d action differs between runs", i, j)
			}
		}
	}
}

// TestPolicySnapshotIndependent verifies a snapshot keeps sampling from the
// frozen weights while the live policy trains on.
func TestPolicySnapshotIndependent(t *testing.T) {
	env := &banditEnv{rng: rand.New(rand.NewSource(10)), arms: 3}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{Hidden: []int{8}, BatchSize: 4, Seed: 11})
	snap := agent.PolicySnapshot(12)
	before := agent.Policy.Clone()
	for i := 0; i < 40; i++ {
		agent.Observe(RunEpisode(env, agent.Sample, 5))
	}
	if d := maxParamDiff(before, agent.Policy); d == 0 {
		t.Fatal("live policy did not train")
	}
	// The snapshot must still run (frozen weights) and return valid actions.
	s := env.Reset()
	for i := 0; i < 20; i++ {
		if a := snap(s); a < 0 || !s.Mask[a] {
			t.Fatalf("snapshot returned invalid action %d", a)
		}
	}
}

// TestSplitEpisodes covers the even and ragged split cases.
func TestSplitEpisodes(t *testing.T) {
	cases := []struct {
		total, workers int
		want           []int
	}{
		{16, 4, []int{4, 4, 4, 4}},
		{17, 4, []int{5, 4, 4, 4}},
		{3, 4, []int{1, 1, 1, 0}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		got := SplitEpisodes(c.total, c.workers)
		if len(got) != len(c.want) {
			t.Fatalf("SplitEpisodes(%d,%d) len %d, want %d", c.total, c.workers, len(got), len(c.want))
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Fatalf("SplitEpisodes(%d,%d) = %v, want %v", c.total, c.workers, got, c.want)
			}
		}
		if sum != c.total {
			t.Fatalf("SplitEpisodes(%d,%d) sums to %d", c.total, c.workers, sum)
		}
	}
}
