package rl

import (
	"math"
	"math/rand"
	"sync/atomic"

	"handsfree/internal/nn"
)

// Sample is one supervised example for reward prediction: in state Features,
// taking action Action eventually produced an episode with value Target
// (for query optimization: the final plan's latency, lower is better).
// Mask records which actions were valid in the state; the margin loss uses
// it to keep unobserved actions from looking spuriously attractive.
type Sample struct {
	Features []float64
	Mask     []bool
	Action   int
	Target   float64
}

// ReplayBuffer is a fixed-capacity ring buffer of reward-prediction samples.
type ReplayBuffer struct {
	cap  int
	data []Sample
	next int
	full bool
}

// NewReplayBuffer returns a buffer holding at most capacity samples.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	return &ReplayBuffer{cap: capacity, data: make([]Sample, 0, capacity)}
}

// Add inserts a sample, evicting the oldest once at capacity.
func (b *ReplayBuffer) Add(s Sample) {
	if len(b.data) < b.cap {
		b.data = append(b.data, s)
		return
	}
	b.full = true
	b.data[b.next] = s
	b.next = (b.next + 1) % b.cap
}

// Len reports how many samples are stored.
func (b *ReplayBuffer) Len() int { return len(b.data) }

// Sample returns n samples drawn uniformly with replacement.
func (b *ReplayBuffer) Sample(n int, rng *rand.Rand) []Sample {
	return b.SampleInto(make([]Sample, 0, n), n, rng)
}

// SampleInto draws n samples uniformly with replacement, appending them to
// dst (typically dst[:0] of a reused scratch slice) so steady-state training
// fills minibatches without materializing per-sample copies.
func (b *ReplayBuffer) SampleInto(dst []Sample, n int, rng *rand.Rand) []Sample {
	for i := 0; i < n && len(b.data) > 0; i++ {
		dst = append(dst, b.data[rng.Intn(len(b.data))])
	}
	return dst
}

// QAgentConfig controls a QAgent.
type QAgentConfig struct {
	Hidden  []int   // hidden layer widths (default 128, 64)
	LR      float64 // Adam learning rate (default 1e-3)
	Epsilon float64 // exploration probability during acting (default 0.05)
	Clip    float64 // gradient clip norm (default 5)
	// Precision selects the network's scalar type: nn.F64 (the
	// bitwise-deterministic default), nn.F32 (half the memory bandwidth per
	// batched kernel, tolerance-verified against f64), or nn.PrecisionAuto
	// (the HANDSFREE_PRECISION environment variable, defaulting to f64).
	Precision nn.Precision
	// Engine selects the dense-kernel backend: nn.EngineReference (the
	// bitwise-deterministic naive kernels), nn.EngineBlocked (cache-blocked,
	// register-tiled microkernels, tolerance-verified against reference), or
	// nn.EngineAuto (the HANDSFREE_ENGINE environment variable, defaulting
	// to the build's compiled-in engine).
	Engine nn.Engine
	Seed   int64
}

func (c *QAgentConfig) fill() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
}

// QAgent learns a reward-prediction function Q(s, ·): an MLP mapping a state
// to one predicted episode outcome per action. This is the "reward prediction
// function" of Section 5.1 (learning from demonstration): the agent is taught
// to predict that taking action a in state s eventually results in latency L,
// then acts by choosing the action with the lowest predicted latency.
//
// Targets are learned in log space: catastrophic plans are orders of
// magnitude slower than good ones, and a raw-latency regression would be
// dominated by them.
type QAgent struct {
	Net *nn.Network
	Opt *nn.Adam
	Cfg QAgentConfig

	rng     *rand.Rand
	scratch []Sample // reused minibatch backing for Train/TrainMargin
	xbuf    nn.Mat   // reused minibatch input matrix
	gradbuf nn.Mat   // reused output-gradient matrix

	// bestFallbacks counts Best() calls where every valid prediction was
	// NaN or +Inf and the first valid action was returned instead of the
	// argmin. A nonzero count flags a broken or diverged network — the
	// kind of silent anomaly that would otherwise only surface as bad
	// plans (or poisoned cache entries) downstream. Atomic because frozen
	// agents may serve concurrent collection workers.
	bestFallbacks atomic.Int64
}

// NewQAgent builds a reward-prediction agent for the given dimensions.
func NewQAgent(obsDim, actionDim int, cfg QAgentConfig) *QAgent {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append(append([]int{obsDim}, cfg.Hidden...), actionDim)
	opt := nn.NewAdam(cfg.LR)
	opt.Clip = cfg.Clip
	net := nn.NewMLPAt(cfg.Precision, rng, sizes...)
	net.SetEngine(cfg.Engine)
	return &QAgent{Net: net, Opt: opt, Cfg: cfg, rng: rng}
}

// Predict returns the predicted log-latency for every action at a state.
func (q *QAgent) Predict(s State) []float64 {
	return q.Net.Forward(nn.FromVec(s.Features)).Data
}

// PredictBatch evaluates the network once for a whole batch of states,
// returning a len(states)×ActionDim matrix whose row i is Predict(states[i]).
// One batched forward replaces len(states) 1×d passes; the per-row numbers
// are identical to the per-state path. The result lives in the network's
// reusable forward buffer: it is valid until the agent's next
// predict/train call, and callers that retain it longer must Clone it.
func (q *QAgent) PredictBatch(states []State) *nn.Mat {
	x := nn.NewMat(len(states), q.Net.InDim())
	for i, s := range states {
		if len(s.Features) != x.Cols {
			panic("rl: PredictBatch state dimension does not match network input")
		}
		copy(x.Row(i), s.Features)
	}
	return q.Net.Forward(x)
}

// Act picks the valid action with the lowest predicted outcome; with
// probability ε it instead explores uniformly over valid actions.
func (q *QAgent) Act(s State) int {
	if q.rng.Float64() < q.Cfg.Epsilon {
		return randomValid(s.Mask, q.rng)
	}
	return q.Best(s)
}

// Best returns the valid action with the minimum predicted outcome. If every
// valid prediction is +Inf or NaN (a freshly broken or diverged network),
// it falls back to the first valid action rather than reporting no action,
// so callers always receive a usable choice while any valid action exists.
// Each such fallback is counted (see BestFallbacks) so training anomalies
// are observable instead of silent. Only an all-false mask returns -1.
func (q *QAgent) Best(s State) int {
	pred := q.Predict(s)
	best, bestV := -1, math.Inf(1)
	firstValid := -1
	for i, ok := range s.Mask {
		if !ok {
			continue
		}
		if firstValid < 0 {
			firstValid = i
		}
		if pred[i] < bestV {
			best, bestV = i, pred[i]
		}
	}
	if best < 0 {
		if firstValid >= 0 {
			q.bestFallbacks.Add(1)
		}
		return firstValid
	}
	return best
}

// BestFallbacks reports how many times Best has fallen back to the first
// valid action because every valid prediction was NaN or +Inf. A healthy
// agent keeps this at zero; monitor it alongside the plan cache stats when
// diagnosing training anomalies.
func (q *QAgent) BestFallbacks() int64 { return q.bestFallbacks.Load() }

// assembleBatch copies the sampled features into the agent's reused
// batchSize×obsDim scratch matrix so the whole minibatch runs through a
// single forward pass without allocating.
func (q *QAgent) assembleBatch(batch []Sample) *nn.Mat {
	x := &q.xbuf
	x.Resize(len(batch), q.Net.InDim())
	for i, s := range batch {
		if len(s.Features) != x.Cols {
			panic("rl: sample dimension does not match network input")
		}
		copy(x.Row(i), s.Features)
	}
	return x
}

// Train runs one minibatch regression step on samples drawn from the buffer,
// fitting Q(s, a) toward each sample's target. The whole minibatch is one
// batched forward/backward pass with a masked per-row gradient (only the
// taken action of each row receives gradient); the accumulated parameter
// gradients are identical to running the samples one at a time. Returns the
// mean Huber loss.
func (q *QAgent) Train(buf *ReplayBuffer, batchSize int) float64 {
	if buf.Len() == 0 {
		return 0
	}
	q.scratch = buf.SampleInto(q.scratch[:0], batchSize, q.rng)
	batch := q.scratch
	out := q.Net.Forward(q.assembleBatch(batch))
	grad := &q.gradbuf
	grad.Resize(out.Rows, out.Cols)
	grad.Zero()
	var total float64
	for i, s := range batch {
		pred := out.Row(i)
		d := pred[s.Action] - s.Target
		// Huber on the single taken action; other actions get no gradient.
		const delta = 1.0
		if math.Abs(d) <= delta {
			total += 0.5 * d * d
			grad.Set(i, s.Action, d)
		} else {
			total += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad.Set(i, s.Action, delta)
			} else {
				grad.Set(i, s.Action, -delta)
			}
		}
	}
	q.Net.ZeroGrad()
	q.Net.Backward(grad)
	q.Net.DivideGrads(float64(len(batch)))
	q.Opt.StepNet(q.Net)
	return total / float64(len(batch))
}

// TrainMargin runs one minibatch step of the DQfD-style demonstration loss
// (Hester et al., the paper's reference [11]): Huber regression on the
// demonstrated action's outcome PLUS a large-margin term that forces the
// demonstrated action's prediction to be at least `margin` lower (better)
// than every other valid action's. Without the margin term, actions the
// expert never takes keep their random initial predictions and the argmin
// policy is drawn to exactly the plans no one has ever measured — the §5.1
// "no training data to ground them" problem. Like Train, the minibatch runs
// as one batched forward/backward pass.
func (q *QAgent) TrainMargin(buf *ReplayBuffer, batchSize int, margin, marginWeight float64) float64 {
	if buf.Len() == 0 {
		return 0
	}
	q.scratch = buf.SampleInto(q.scratch[:0], batchSize, q.rng)
	batch := q.scratch
	out := q.Net.Forward(q.assembleBatch(batch))
	grad := &q.gradbuf
	grad.Resize(out.Rows, out.Cols)
	grad.Zero()
	var total float64
	for i, s := range batch {
		pred := out.Row(i)
		grow := grad.Row(i)

		// Regression on the demonstrated action.
		d := pred[s.Action] - s.Target
		const delta = 1.0
		if math.Abs(d) <= delta {
			total += 0.5 * d * d
			grow[s.Action] = d
		} else {
			total += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grow[s.Action] = delta
			} else {
				grow[s.Action] = -delta
			}
		}

		// Large-margin term over the valid competitors.
		if len(s.Mask) == len(pred) {
			comp, compV := -1, math.Inf(1)
			for j, ok := range s.Mask {
				if !ok || j == s.Action {
					continue
				}
				if pred[j] < compV {
					comp, compV = j, pred[j]
				}
			}
			if comp >= 0 {
				violation := pred[s.Action] - (compV - margin)
				if violation > 0 {
					total += marginWeight * violation
					grow[s.Action] += marginWeight
					grow[comp] -= marginWeight
				}
			}
		}
	}
	q.Net.ZeroGrad()
	q.Net.Backward(grad)
	q.Net.DivideGrads(float64(len(batch)))
	q.Opt.StepNet(q.Net)
	return total / float64(len(batch))
}

// randomValid returns a uniformly random valid action index, or -1 if none.
func randomValid(mask []bool, rng *rand.Rand) int {
	n := 0
	for _, ok := range mask {
		if ok {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := rng.Intn(n)
	for i, ok := range mask {
		if !ok {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

// RandomPolicy returns an action chooser that picks uniformly among valid
// actions — the paper's "random choice" baseline for the naive-DRL result.
func RandomPolicy(seed int64) func(State) int {
	rng := rand.New(rand.NewSource(seed))
	return func(s State) int { return randomValid(s.Mask, rng) }
}
