package rl

import (
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/nn"
)

// relDiff is the symmetric relative difference of the tolerance-parity
// tests: |a−b| / (1 + |a| + |b|).
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(a) + math.Abs(b))
}

// TestQAgentF32TrainToleranceParity trains two identically seeded QAgents —
// one per precision — on the same replay buffer and requires per-step loss
// parity within the documented bound plus genuine learning on the f32 path.
// Both agents draw minibatches from their own (identically seeded) RNGs, so
// they see the same samples step for step.
func TestQAgentF32TrainToleranceParity(t *testing.T) {
	const obsDim, actions = 24, 8
	buf := NewReplayBuffer(1024)
	fillBuffer(buf, 512, obsDim, actions, rand.New(rand.NewSource(1)))
	mk := func(p nn.Precision) *QAgent {
		return NewQAgent(obsDim, actions, QAgentConfig{Hidden: []int{32, 16}, Precision: p, Seed: 9})
	}
	a64, a32 := mk(nn.F64), mk(nn.F32)
	if a64.Net.Precision() != nn.F64 || a32.Net.Precision() != nn.F32 {
		t.Fatalf("agent precisions %v / %v", a64.Net.Precision(), a32.Net.Precision())
	}
	const tol = 1e-3 // per-step relative loss parity on this workload
	for step := 0; step < 60; step++ {
		l64 := a64.Train(buf, 32)
		l32 := a32.Train(buf, 32)
		if math.IsNaN(l32) || math.IsInf(l32, 0) {
			t.Fatalf("step %d: f32 loss is %v", step, l32)
		}
		if d := relDiff(l64, l32); d > tol {
			t.Fatalf("step %d: f64 loss %v vs f32 loss %v (relative %v > %v)", step, l64, l32, d, tol)
		}
	}
	// Inference parity on a fresh batch after training.
	rng := rand.New(rand.NewSource(7))
	states := make([]State, 8)
	for i := range states {
		f := make([]float64, obsDim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		states[i] = State{Features: f}
	}
	p64 := a64.PredictBatch(states)
	p32 := a32.PredictBatch(states)
	for i := range p64.Data {
		if d := relDiff(p64.Data[i], p32.Data[i]); d > 0.05 {
			t.Fatalf("post-training prediction %d diverged: f64 %v vs f32 %v", i, p64.Data[i], p32.Data[i])
		}
	}
}

// TestReinforceF32ConvergesOnBandit: the f32 policy-gradient path must solve
// the contextual bandit, within a modest margin of the f64 reference — the
// convergence half of the tolerance-parity contract.
func TestReinforceF32ConvergesOnBandit(t *testing.T) {
	train := func(p nn.Precision) int {
		env := &banditEnv{rng: rand.New(rand.NewSource(20)), arms: 4}
		agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{
			Hidden: []int{16}, BatchSize: 8, Precision: p, Seed: 21,
		})
		for ep := 0; ep < 1500; ep++ {
			agent.Observe(RunEpisode(env, agent.Sample, 3))
		}
		wins := 0
		eval := &banditEnv{rng: rand.New(rand.NewSource(22)), arms: 4}
		for ep := 0; ep < 100; ep++ {
			s := eval.Reset()
			if agent.Greedy(s) == eval.ctx {
				wins++
			}
		}
		return wins
	}
	w64, w32 := train(nn.F64), train(nn.F32)
	if w32 < 80 {
		t.Fatalf("f32 agent solved only %d/100 bandit contexts", w32)
	}
	if w64-w32 > 10 {
		t.Fatalf("f32 agent (%d/100) trails f64 (%d/100) by more than 10", w32, w64)
	}
}

// TestMixedPrecisionCheckpointLoads covers the checkpoint upgrade matrix:
// an f64 checkpoint loads into an f32-configured agent (weights rounded) and
// an f32 checkpoint loads into an f64-configured agent (weights widened
// exactly), with the restored policy matching the source within the forward
// tolerance in both directions.
func TestMixedPrecisionCheckpointLoads(t *testing.T) {
	const obsDim, actions = 6, 3
	mk := func(p nn.Precision, seed int64) *Reinforce {
		return NewReinforce(obsDim, actions, ReinforceConfig{Hidden: []int{12}, Precision: p, Seed: seed})
	}
	state := State{Features: []float64{0.3, -1.2, 0.7, 0.05, -0.4, 1.9}, Mask: []bool{true, true, true}}

	t.Run("f64-into-f32", func(t *testing.T) {
		src := mk(nn.F64, 1)
		data, err := src.MarshalPolicy()
		if err != nil {
			t.Fatal(err)
		}
		dst := mk(nn.F32, 2)
		if err := dst.UnmarshalPolicy(data); err != nil {
			t.Fatal(err)
		}
		if dst.Policy.Precision() != nn.F32 {
			t.Fatalf("loaded policy precision %v, agent configured f32", dst.Policy.Precision())
		}
		ps, pd := src.Probs(state), dst.Probs(state)
		for i := range ps {
			if d := relDiff(ps[i], pd[i]); d > 1e-4 {
				t.Fatalf("action %d: source prob %v vs converted %v", i, ps[i], pd[i])
			}
		}
	})

	t.Run("f32-into-f64", func(t *testing.T) {
		src := mk(nn.F32, 3)
		data, err := src.MarshalPolicy()
		if err != nil {
			t.Fatal(err)
		}
		dst := mk(nn.F64, 4)
		if err := dst.UnmarshalPolicy(data); err != nil {
			t.Fatal(err)
		}
		if dst.Policy.Precision() != nn.F64 {
			t.Fatalf("loaded policy precision %v, agent configured f64", dst.Policy.Precision())
		}
		// Widening is exact, so the f64 agent's weights are bit-for-bit the
		// f32 source weights.
		ws, wd := src.Policy.FlattenParams(), dst.Policy.FlattenParams()
		for i := range ws {
			if ws[i] != wd[i] {
				t.Fatalf("weight %d changed on exact widening: %v vs %v", i, ws[i], wd[i])
			}
		}
	})

	t.Run("same-precision-f32", func(t *testing.T) {
		src := mk(nn.F32, 5)
		data, err := src.MarshalPolicy()
		if err != nil {
			t.Fatal(err)
		}
		dst := mk(nn.F32, 6)
		if err := dst.UnmarshalPolicy(data); err != nil {
			t.Fatal(err)
		}
		ps, pd := src.Probs(state), dst.Probs(state)
		for i := range ps {
			if ps[i] != pd[i] {
				t.Fatalf("f32 round trip changed action %d prob: %v vs %v", i, ps[i], pd[i])
			}
		}
	})

	t.Run("corrupted-and-empty", func(t *testing.T) {
		good, err := mk(nn.F64, 7).MarshalPolicy()
		if err != nil {
			t.Fatal(err)
		}
		for name, data := range map[string][]byte{
			"empty":     {},
			"garbage":   []byte("......definitely not gob......"),
			"truncated": good[:len(good)/3],
		} {
			dst := mk(nn.F32, 8)
			before := dst.Policy
			if err := dst.UnmarshalPolicy(data); err == nil {
				t.Fatalf("%s checkpoint loaded without error", name)
			}
			if dst.Policy != before {
				t.Fatalf("%s checkpoint replaced the policy despite erroring", name)
			}
		}
	})
}

// TestAsyncTrainF32: the asynchronous actor-learner split must run end to
// end on f32 policies — snapshots keep the learner's precision through the
// parameter server and actors infer against them concurrently.
func TestAsyncTrainF32(t *testing.T) {
	const actors = 4
	envs := make([]Env, actors)
	for w := range envs {
		envs[w] = &banditEnv{rng: rand.New(rand.NewSource(int64(40 + w))), arms: 3}
	}
	learner := NewReinforce(3, 3, ReinforceConfig{Hidden: []int{8}, BatchSize: 4, Precision: nn.F32, Seed: 41})
	if learner.Policy.Precision() != nn.F32 {
		t.Fatal("learner not f32")
	}
	stats := TrainAsync(learner, envs, 64, AsyncConfig{Actors: actors, Staleness: 2, Seed: 42}, nil, nil)
	if stats.Episodes != 64 {
		t.Fatalf("collected %d episodes, want 64", stats.Episodes)
	}
	if stats.Updates == 0 {
		t.Fatal("f32 async run applied no policy updates")
	}
	if stats.MaxLag > 2 {
		t.Fatalf("staleness bound violated at f32: max lag %d > 2", stats.MaxLag)
	}
}
