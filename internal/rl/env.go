// Package rl provides the reinforcement-learning machinery used by the
// hands-free optimizer agents: an episodic environment abstraction, a
// REINFORCE policy-gradient agent with baseline and entropy regularization,
// a Q-style value agent for learning from demonstration, replay buffers,
// and running reward normalization.
//
// The design mirrors Section 2 of the paper: an agent repeatedly observes a
// state and a set of valid actions, picks one, and receives a reward; query
// optimization episodes end at a terminal state (a complete plan) where the
// only nonzero reward arrives.
//
// # Batched training and parallel collection
//
// The hot paths are batch-first. QAgent.Train/TrainMargin assemble each
// minibatch into one k×d matrix and run a single batched forward/backward
// with a masked per-row gradient; Reinforce stacks every step of an update
// batch the same way. Both are numerically identical to their per-sample
// equivalents (asserted by the parity tests) while doing one network pass
// per minibatch instead of one per sample, on top of nn's goroutine-parallel
// matrix kernels. QAgent.PredictBatch and Reinforce.ProbsBatch expose
// batched inference.
//
// Episode collection parallelizes with CollectParallel: worker environments
// step frozen Reinforce.PolicySnapshot copies concurrently, and Interleave
// merges the per-worker trajectories into a deterministic order (seeded
// per-worker RNGs; the merge is a pure function of worker/episode indices).
//
// TrainAsync replaces the per-round barrier of CollectParallel with the
// asynchronous actor-learner split: actors collect continuously against
// lock-free parameter-server snapshots (staleness bounded by K versions)
// while the learner drains a bounded trajectory queue, updates, and
// republishes. Synchronous collection remains the deterministic reference;
// async trades reproducibility for wall-clock throughput.
package rl

// State is one observation from an environment: a feature vector plus the
// validity mask over the (fixed-size) action space.
type State struct {
	Features []float64
	Mask     []bool
	Terminal bool
}

// NumValid returns how many actions are currently valid.
func (s State) NumValid() int {
	n := 0
	for _, ok := range s.Mask {
		if ok {
			n++
		}
	}
	return n
}

// Env is an episodic environment with a fixed-size discrete action space.
// Invalid actions are communicated through State.Mask.
type Env interface {
	// Reset starts a new episode and returns the initial state.
	Reset() State
	// Step performs an action, returning the next state, the reward earned
	// by the action, and whether the episode has ended.
	Step(action int) (next State, reward float64, done bool)
	// ObsDim is the length of State.Features.
	ObsDim() int
	// ActionDim is the size of the action space (and of State.Mask).
	ActionDim() int
}

// Step is one (state, action, reward) transition recorded during an episode.
type Step struct {
	Features []float64
	Mask     []bool
	Action   int
	Reward   float64
}

// Trajectory is the history of one episode.
type Trajectory struct {
	Steps []Step
	// Return is the undiscounted sum of rewards over the episode.
	Return float64
	// Weight scales this trajectory's advantage in the policy update; 0
	// means the default weight of 1. TrainAsync sets it below 1 for
	// over-stale trajectories when importance weighting is enabled, so
	// experience collected under an old policy still teaches, just with
	// discounted trust.
	Weight float64
}

// RunEpisode drives env with the given action-selection policy until the
// episode terminates, recording the trajectory. maxSteps guards against
// non-terminating environments.
func RunEpisode(env Env, choose func(State) int, maxSteps int) Trajectory {
	var traj Trajectory
	s := env.Reset()
	for i := 0; i < maxSteps && !s.Terminal; i++ {
		a := choose(s)
		next, r, done := env.Step(a)
		traj.Steps = append(traj.Steps, Step{Features: s.Features, Mask: s.Mask, Action: a, Reward: r})
		traj.Return += r
		s = next
		if done {
			break
		}
	}
	return traj
}
