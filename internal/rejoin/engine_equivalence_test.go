package rejoin

import (
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/nn"
	"handsfree/internal/plan"
	"handsfree/internal/rl"
)

// TestEnginePlanEquivalence is the plan-level engine property: one trained
// policy, loaded into agents running the reference and the blocked compute
// engines, must emit identical greedy join orders at identical costs on the
// seed workload. Greedy rollouts are 1×d products, which the blocked engine
// routes through its bitwise reference fallback, so the comparison is exact
// equality, not tolerance. This is the in-process counterpart of the CI
// matrix leg that re-runs the whole suite under HANDSFREE_ENGINE=blocked.
func TestEnginePlanEquivalence(t *testing.T) {
	fx := fixture(t, 6, 4, 6)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	trainer := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, Engine: nn.EngineReference, Seed: 5})
	for ep := 0; ep < 120; ep++ {
		trainer.TrainEpisode()
	}
	data, err := trainer.Save()
	if err != nil {
		t.Fatal(err)
	}

	load := func(e nn.Engine, seed int64) *Agent {
		env := NewEnv(space, fx.planner, fx.queries, 1)
		ag := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, Engine: e, Seed: seed})
		if err := ag.Load(data); err != nil {
			t.Fatal(err)
		}
		return ag
	}
	ref := load(nn.EngineReference, 8)
	blk := load(nn.EngineBlocked, 9)
	if got := blk.RL.Policy.Engine(); got != nn.EngineBlocked {
		t.Fatalf("loaded policy engine = %v, want blocked", got)
	}

	for _, q := range fx.queries {
		pr, cr := ref.GreedyPlan(q)
		pb, cb := blk.GreedyPlan(q)
		if cr != cb {
			t.Fatalf("query %s: reference cost %v, blocked cost %v", q.Name, cr, cb)
		}
		if fr, fb := plan.Format(pr), plan.Format(pb); fr != fb {
			t.Fatalf("query %s: plans diverge across engines\nreference:\n%s\nblocked:\n%s", q.Name, fr, fb)
		}
	}
}
