package rejoin

import (
	"handsfree/internal/rl"
)

// TrainEpisodes runs `episodes` training episodes and returns their results
// in order. With workers ≤ 1 it is a plain sequential loop over
// TrainEpisode. With workers > 1 it collects episodes in parallel: each
// worker drives its own environment replica with a frozen snapshot of the
// current policy, one policy-batch of episodes per round, and the round's
// trajectories are merged deterministically (seeded per-worker RNGs, merge
// order a pure function of worker/episode indices) before being fed to the
// learner. The policy therefore updates exactly as often as in sequential
// training — once per accumulated batch — while episode collection, the
// dominant cost (n−1 network passes plus a full optimizer completion per
// episode), saturates the available cores.
func (a *Agent) TrainEpisodes(episodes, workers int) []EpisodeResult {
	results := make([]EpisodeResult, 0, episodes)
	if workers <= 1 {
		for i := 0; i < episodes; i++ {
			results = append(results, a.TrainEpisode())
		}
		return results
	}

	envs := make([]rl.Env, workers)
	replicas := make([]*Env, workers)
	for w := 0; w < workers; w++ {
		replicas[w] = a.Env.Replica(w, workers)
		envs[w] = replicas[w]
	}
	maxSteps := 2*a.Env.Space.MaxRels + 4
	round := a.RL.Cfg.BatchSize
	if round < 1 {
		round = 1
	}
	for done := 0; done < episodes; {
		n := min(round, episodes-done)
		per := rl.SplitEpisodes(n, workers)
		policies := make([]func(rl.State) int, workers)
		perResults := make([][]EpisodeResult, workers)
		// Each round takes fresh policy snapshots: advance the shared plan
		// cache's policy epoch so greedy plans memoized under the previous
		// policy are invalidated (pure completion entries are unaffected).
		a.Env.Planner.Cache.BumpEpoch()
		for w := 0; w < workers; w++ {
			a.snapSeed++
			policies[w] = a.RL.PolicySnapshot(a.snapSeed)
			perResults[w] = make([]EpisodeResult, per[w])
		}
		trajs := rl.CollectParallel(envs, policies, per, maxSteps, func(w, ep int, _ rl.Trajectory) {
			perResults[w][ep] = EpisodeResult{
				Query: replicas[w].Current(),
				Cost:  replicas[w].LastCost,
				Plan:  replicas[w].LastPlan,
			}
		})
		a.RL.ObserveAll(rl.Interleave(trajs))
		results = append(results, rl.Interleave(perResults)...)
		done += n
	}
	return results
}
