package rejoin

import (
	"math"
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/plancache"
	"handsfree/internal/rl"
)

// TestTrainAsyncProducesCompleteEpisodes: every async episode must carry a
// completed plan with a positive cost for a workload query, the episode
// budget must be honored exactly, and the learner must actually update.
func TestTrainAsyncProducesCompleteEpisodes(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 2})
	results := agent.TrainAsync(48, rl.AsyncConfig{Actors: 4, Staleness: 2})
	if len(results) != 48 {
		t.Fatalf("TrainAsync returned %d results, want 48", len(results))
	}
	seen := map[string]int{}
	for i, r := range results {
		if r.Plan == nil || r.Query == nil || r.Cost <= 0 {
			t.Fatalf("episode %d incomplete: plan=%v cost=%v", i, r.Plan, r.Cost)
		}
		seen[r.Query.Name]++
	}
	for _, q := range fx.queries {
		if seen[q.Name] == 0 {
			t.Fatalf("query %s never served during async collection", q.Name)
		}
	}
	if agent.RL.Updates == 0 {
		t.Fatal("no policy updates after 48 async episodes with batch size 8")
	}
}

// asyncGreedyRatio trains an agent (sync or async) and returns the geometric
// mean of greedy-plan cost over the workload, normalized per query by the
// traditional optimizer's cost.
func greedyRatio(t *testing.T, fx fixtureT, agent *Agent) float64 {
	t.Helper()
	var logSum float64
	for _, q := range fx.queries {
		_, cost := agent.GreedyPlan(q)
		planned, err := fx.planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		logSum += math.Log(cost / planned.Cost)
	}
	return math.Exp(logSum / float64(len(fx.queries)))
}

// TestTrainAsyncConvergesLikeSync: on the seed workload, async training must
// reach the synchronous path's final plan quality within tolerance — the
// bounded staleness may cost some sample efficiency but must not break
// convergence.
func TestTrainAsyncConvergesLikeSync(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	const episodes = 240

	build := func(seed int64) *Agent {
		space := featurize.NewSpace(fx.maxRels, fx.est)
		env := NewEnv(space, fx.planner, fx.queries, 1)
		return NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: seed})
	}

	syncAgent := build(2)
	syncAgent.TrainEpisodes(episodes, 1)
	syncRatio := greedyRatio(t, fx, syncAgent)

	asyncAgent := build(2)
	asyncAgent.TrainAsync(episodes, rl.AsyncConfig{Actors: 4, Staleness: 4})
	asyncRatio := greedyRatio(t, fx, asyncAgent)

	t.Logf("greedy cost ratio vs optimizer: sync %.3f, async %.3f", syncRatio, asyncRatio)
	if asyncRatio > 1.6*syncRatio {
		t.Fatalf("async final plan quality %.3f not within tolerance of sync %.3f", asyncRatio, syncRatio)
	}
}

// TestTrainAsyncBumpsCacheEpochPerPublish: PR 2's cache invariant — greedy
// plans memoized under one policy must never be served under another — must
// survive concurrent republishing: every snapshot publish advances the
// shared plan cache's policy epoch.
func TestTrainAsyncBumpsCacheEpochPerPublish(t *testing.T) {
	fx := fixture(t, 3, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	cache := plancache.New(plancache.Config{Capacity: 1 << 12})
	env := NewEnv(space, fx.planner, fx.queries, 1).UseCache(cache)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Seed: 3})

	before := cache.Stats().EpochBumps
	agent.TrainAsync(24, rl.AsyncConfig{Actors: 3, Staleness: 2})
	bumps := cache.Stats().EpochBumps - before
	updates := uint64(agent.RL.Updates)
	if updates == 0 {
		t.Fatal("learner never updated")
	}
	// One bump when collection starts (fresh snapshots) plus one per
	// publish; with BatchSize 4 over 24 episodes that is one per update.
	if bumps < updates+1 {
		t.Fatalf("cache epoch bumped %d times for %d publishes; stale greedy plans could be served", bumps, updates)
	}

	// The cached greedy plan for the final policy must still be usable:
	// a second evaluation hits the cache and returns an identical plan.
	q := fx.queries[0]
	p1, c1 := agent.GreedyPlan(q)
	hitsBefore := cache.Stats().Hits
	p2, c2 := agent.GreedyPlan(q)
	if cache.Stats().Hits == hitsBefore {
		t.Fatal("repeated greedy evaluation after async training missed the cache")
	}
	if c1 != c2 || plancache.HashPlan(p1) != plancache.HashPlan(p2) {
		t.Fatalf("cached greedy plan diverged: cost %v vs %v", c1, c2)
	}
}
