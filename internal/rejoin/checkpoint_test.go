package rejoin

import (
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/rl"
)

func TestCheckpointRoundTrip(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, Seed: 2})
	for ep := 0; ep < 100; ep++ {
		agent.TrainEpisode()
	}
	// Record the trained policy's decisions.
	var wantCosts []float64
	for _, q := range fx.queries {
		_, c := agent.GreedyPlan(q)
		wantCosts = append(wantCosts, c)
	}
	data, err := agent.Save()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh agent restored from the checkpoint must reproduce them.
	env2 := NewEnv(space, fx.planner, fx.queries, 1)
	restored := NewAgent(env2, rl.ReinforceConfig{Hidden: []int{32}, Seed: 99})
	if err := restored.Load(data); err != nil {
		t.Fatal(err)
	}
	for i, q := range fx.queries {
		_, c := restored.GreedyPlan(q)
		if c != wantCosts[i] {
			t.Fatalf("query %s: restored cost %v, want %v", q.Name, c, wantCosts[i])
		}
	}
}

func TestCheckpointRejectsWrongDims(t *testing.T) {
	fx := fixture(t, 2, 4, 4)
	small := featurize.NewSpace(4, fx.est)
	big := featurize.NewSpace(6, fx.est)
	envA := NewEnv(small, fx.planner, fx.queries, 1)
	agentA := NewAgent(envA, rl.ReinforceConfig{Hidden: []int{16}, Seed: 1})
	data, err := agentA.Save()
	if err != nil {
		t.Fatal(err)
	}
	envB := NewEnv(big, fx.planner, fx.queries, 1)
	agentB := NewAgent(envB, rl.ReinforceConfig{Hidden: []int{16}, Seed: 1})
	if err := agentB.Load(data); err == nil {
		t.Fatal("checkpoint with mismatched dimensions accepted")
	}
}
