package rejoin

import (
	"runtime"

	"handsfree/internal/rl"
)

// TrainAsync runs `episodes` training episodes with the asynchronous
// actor-learner split (rl.TrainAsync): cfg.Actors environment replicas
// continuously collect episodes against lock-free policy snapshots from a
// parameter server while the learner drains trajectories, updates, and
// republishes — no round barrier, so the learner never idles waiting for
// the slowest actor. Results arrive in learner-consumption order, which is
// scheduling-dependent; use TrainEpisodes when bitwise reproducibility
// matters more than throughput.
//
// Every snapshot publish advances the shared plan cache's policy epoch (when
// a cache is attached via UseCache), so greedy plans memoized under older
// snapshots can never be served — the same invariant the synchronous rounds
// maintain, preserved under concurrent republishing.
func (a *Agent) TrainAsync(episodes int, cfg rl.AsyncConfig) []EpisodeResult {
	if cfg.Actors < 1 {
		// Same default rl.TrainAsync documents: the replica count must be
		// fixed here, before the environments are built.
		cfg.Actors = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2*a.Env.Space.MaxRels + 4
	}
	if cfg.Seed == 0 {
		// Advance the agent's snapshot-seed counter so successive training
		// calls never replay earlier action-sampling RNG streams.
		a.snapSeed += int64(cfg.Actors)
		cfg.Seed = a.snapSeed
	}
	replicas := make([]*Env, cfg.Actors)
	envs := make([]rl.Env, cfg.Actors)
	for w := 0; w < cfg.Actors; w++ {
		replicas[w] = a.Env.Replica(w, cfg.Actors)
		envs[w] = replicas[w]
	}
	// Fresh snapshots are about to be taken: invalidate plans memoized
	// under the previous policy, then keep invalidating on every publish.
	cache := a.Env.Planner.Cache
	cache.BumpEpoch()
	prev := cfg.OnPublish
	cfg.OnPublish = func(version uint64) {
		cache.BumpEpoch()
		if prev != nil {
			prev(version)
		}
	}

	results := make([]EpisodeResult, 0, episodes)
	rl.TrainAsync(a.RL, envs, episodes, cfg,
		func(w, seq int, _ rl.Trajectory) any {
			return EpisodeResult{
				Query: replicas[w].Current(),
				Cost:  replicas[w].LastCost,
				Plan:  replicas[w].LastPlan,
			}
		},
		func(e rl.AsyncEpisode) {
			results = append(results, e.Out.(EpisodeResult))
		})
	return results
}
