// Package rejoin implements the paper's §3 case study: ReJOIN, a deep
// reinforcement learning join order enumerator. Episodes build a join tree
// bottom-up over a query's relations; the terminal reward is derived from
// the traditional optimizer's cost model applied to the completed physical
// plan (the optimizer performs operator and access-path selection on the
// learned join order, exactly as in the paper).
//
// Episode collection — the training hot path — can attach a plancache.Cache
// (Env.UseCache): the per-episode optimizer completion is then memoized
// across episodes, and GreedyPlan memoizes whole learned plans keyed by the
// policy version so repeated evaluations of an unchanged policy skip both
// the network passes and the completion.
package rejoin

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"

	"handsfree/internal/cost"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// RewardKind selects the terminal reward transform.
type RewardKind int

const (
	// RewardNegLogCost uses −log(cost): smooth over the many orders of
	// magnitude that plan costs span (the package default).
	RewardNegLogCost RewardKind = iota
	// RewardReciprocal uses 1/cost, the exact form in the paper (§3).
	RewardReciprocal
)

// Env is the ReJOIN Markov decision process. Each Reset serves the next
// query of the workload (an episode per query, queries cycling continuously,
// as the paper describes). Actions pick ordered subtree pairs to join; the
// episode terminates when one tree remains.
type Env struct {
	Space   *featurize.Space
	Planner *optimizer.Planner
	Queries []*query.Query
	// Reward selects the terminal reward transform.
	Reward RewardKind
	// DisallowCross masks join actions between disconnected subtrees.
	DisallowCross bool

	rng    *rand.Rand
	seed   int64
	curIdx int
	cur    *query.Query
	forest []plan.Node
	// scratch carries the reusable featurization maps (alias index, depth
	// weights, subtree alias sets); Reset per episode.
	scratch featurize.Scratch
	// memo is the per-episode skeleton-hash memo (allocated lazily, only
	// when a plan cache is attached): the terminal completion reuses it so
	// each episode hashes each skeleton node once and allocates no map.
	memo map[plan.Node]uint64

	// LastPlan and LastCost describe the most recently completed episode.
	LastPlan plan.Node
	LastCost float64
}

// NewEnv builds the ReJOIN environment over a workload.
func NewEnv(space *featurize.Space, planner *optimizer.Planner, queries []*query.Query, seed int64) *Env {
	return &Env{
		Space:   space,
		Planner: planner,
		Queries: queries,
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		curIdx:  -1,
	}
}

// UseCache attaches a plan cache to the environment's planner (a shallow
// planner copy; other users of the original planner are unaffected).
// Replicas built afterwards inherit the attachment, so parallel collection
// workers share one sharded cache. Returns e for chaining.
func (e *Env) UseCache(c *plancache.Cache) *Env {
	e.Planner = e.Planner.WithCache(c)
	return e
}

// Replica returns an independent copy of the environment for parallel
// episode collection: its own RNG stream (derived from the worker index)
// and an episode cursor staggered so that `workers` replicas sweep the
// workload with minimal overlap. The planner (with any attached plan
// cache), featurization space, and query set are shared — the first two
// are read-only during planning and the cache is concurrency-safe.
func (e *Env) Replica(worker, workers int) *Env {
	r := NewEnv(e.Space, e.Planner, e.Queries, e.seed+1000*int64(worker+1))
	r.Reward = e.Reward
	r.DisallowCross = e.DisallowCross
	if workers > 0 {
		r.curIdx = (worker*len(e.Queries))/workers - 1
	}
	return r
}

// Current returns the query served by the episode in progress.
func (e *Env) Current() *query.Query { return e.cur }

// ObsDim implements rl.Env.
func (e *Env) ObsDim() int { return e.Space.ObsDim() }

// ActionDim implements rl.Env.
func (e *Env) ActionDim() int { return e.Space.ActionDim() }

// Reset starts an episode on the next workload query.
func (e *Env) Reset() rl.State {
	e.curIdx = (e.curIdx + 1) % len(e.Queries)
	return e.ResetTo(e.Queries[e.curIdx])
}

// ResetTo starts an episode on a specific query.
func (e *Env) ResetTo(q *query.Query) rl.State {
	e.cur = q
	e.forest = e.forest[:0]
	for _, a := range featurize.AliasIndex(q) {
		e.forest = append(e.forest, plan.BuildScan(q, a, plan.SeqScan, ""))
	}
	e.LastPlan = nil
	e.LastCost = 0
	clear(e.memo)
	e.scratch.Reset()
	return e.state()
}

// hashMemo returns the env's per-episode skeleton-hash memo, allocating it
// on first use; without an attached plan cache skeleton hashing is never
// needed and the memo stays nil.
func (e *Env) hashMemo() map[plan.Node]uint64 {
	if e.Planner.Cache == nil {
		return nil
	}
	if e.memo == nil {
		e.memo = make(map[plan.Node]uint64, 16)
	}
	return e.memo
}

func (e *Env) state() rl.State {
	var mask []bool
	if e.DisallowCross {
		mask = e.Space.ConnectedPairMaskScratch(e.cur, e.forest, &e.scratch)
	} else {
		mask = e.Space.PairMask(len(e.forest))
	}
	// The feature vector is freshly allocated (trajectories retain it); the
	// scratch eliminates every other per-state allocation of the encoding.
	features := e.Space.JoinStateInto(make([]float64, e.Space.ObsDim()), e.cur, e.forest, &e.scratch)
	return rl.State{
		Features: features,
		Mask:     mask,
		Terminal: len(e.forest) <= 1,
	}
}

// Step joins the (x, y) subtrees addressed by the action. Non-terminal
// rewards are zero; the terminal reward reflects the optimizer cost of the
// completed physical plan (§3: operator/index selection is delegated to the
// traditional optimizer).
func (e *Env) Step(action int) (rl.State, float64, bool) {
	x, y := e.Space.DecodeAction(action)
	if x >= len(e.forest) || y >= len(e.forest) || x == y {
		// Invalid action (should be masked): end the episode with the worst
		// possible signal rather than panicking mid-training.
		return rl.State{Terminal: true}, e.terminalReward(math.Inf(1)), true
	}
	joined := plan.JoinNodes(e.cur, plan.NestLoop, e.forest[x], e.forest[y])
	var next []plan.Node
	for i, n := range e.forest {
		if i != x && i != y {
			next = append(next, n)
		}
	}
	e.forest = append(next, joined)

	if len(e.forest) > 1 {
		return e.state(), 0, false
	}
	completed, nc := e.Planner.CompletePhysicalMemo(e.cur, e.forest[0], e.hashMemo())
	e.LastPlan = completed
	e.LastCost = nc.Total
	return e.state(), e.terminalReward(nc.Total), true
}

func (e *Env) terminalReward(cost float64) float64 {
	switch e.Reward {
	case RewardReciprocal:
		if math.IsInf(cost, 1) {
			return 0
		}
		return 1 / cost
	default:
		if math.IsInf(cost, 1) {
			return -50
		}
		return -math.Log(cost)
	}
}

// agentNonce hands every Agent (and every Load-restored policy) a distinct
// identity for plan-cache keys, so agents sharing one cache can never serve
// each other's memoized greedy plans.
var agentNonce atomic.Uint64

// Agent couples the environment with a REINFORCE policy.
type Agent struct {
	Env *Env
	RL  *rl.Reinforce

	// snapSeed persists the policy-snapshot seed counter across
	// TrainEpisodes calls so successive parallel rounds never replay an
	// earlier round's action-sampling RNG streams.
	snapSeed int64
	// cacheID is this agent's identity in greedy-plan cache keys; redrawn
	// by Load because a restored policy is a different policy.
	cacheID uint64
}

// NewAgent builds a ReJOIN agent with the given policy configuration.
func NewAgent(env *Env, cfg rl.ReinforceConfig) *Agent {
	return &Agent{
		Env:      env,
		RL:       rl.NewReinforce(env.ObsDim(), env.ActionDim(), cfg),
		snapSeed: cfg.Seed,
		cacheID:  agentNonce.Add(1),
	}
}

// EpisodeResult reports one training or evaluation episode.
type EpisodeResult struct {
	Query *query.Query
	// Cost is the optimizer cost of the plan the agent produced.
	Cost float64
	// Plan is the completed physical plan.
	Plan plan.Node
}

// TrainEpisode runs one sampled episode on the next workload query and
// feeds it to the learner.
func (a *Agent) TrainEpisode() EpisodeResult {
	traj := rl.RunEpisode(a.Env, a.RL.Sample, 2*a.Env.Space.MaxRels+4)
	a.RL.Observe(traj)
	return EpisodeResult{Query: a.Env.Current(), Cost: a.Env.LastCost, Plan: a.Env.LastPlan}
}

// Save serializes the trained policy for later reuse (gob encoding).
func (a *Agent) Save() ([]byte, error) {
	return a.RL.MarshalPolicy()
}

// Load restores a policy saved with Save. The checkpoint must have been
// produced by an agent over the same featurization space. The agent's
// plan-cache identity is redrawn: greedy plans memoized for the previous
// weights must not be served for the restored ones.
func (a *Agent) Load(data []byte) error {
	if err := a.RL.UnmarshalPolicy(data); err != nil {
		return err
	}
	a.cacheID = agentNonce.Add(1)
	return nil
}

// greedyKey keys a whole learned plan for q under the current policy
// version of this specific agent. The Skeleton slot (unused for whole-query
// entries) carries the agent's cache identity, so agents sharing a cache
// keep disjoint entries; the epoch folds together the shared cache epoch
// (bumped whenever fresh policy snapshots are taken; low 32 bits) and the
// agent's own update counter (high 32 bits) in disjoint bit ranges, so a
// plan cached before any kind of policy change can never be returned. The
// update counter and cache identity alone would be precise for this agent;
// folding the shared epoch in as well is deliberate conservatism — the
// issue's snapshot-refresh invalidation contract — at worst costing a
// recompute when another agent's collection round bumps the epoch.
func (a *Agent) greedyKey(c *plancache.Cache, q *query.Query) plancache.Key {
	return plancache.Key{
		Query:    c.FingerprintOf(q),
		Skeleton: a.cacheID,
		Mode:     plancache.ModeGreedyPolicy,
		Epoch:    uint64(a.RL.Updates)<<32 | c.Epoch()&0xffffffff,
	}
}

// GreedyPlan runs the trained policy greedily on a query and returns the
// completed physical plan and its optimizer cost. With a cache attached
// (Env.UseCache), the whole plan is memoized per policy version: repeated
// greedy evaluations of an unchanged policy — the repeated-workload serving
// pattern — skip both the network passes and the optimizer completion.
func (a *Agent) GreedyPlan(q *query.Query) (plan.Node, float64) {
	node, c, _ := a.GreedyPlanCtx(context.Background(), q)
	return node, c
}

// GreedyPlanCtx is GreedyPlan under a request-scoped context: the rollout
// checks ctx before every policy decision, so a deadline or cancellation
// cuts the search off mid-episode and returns ctx.Err() with a nil plan.
// A cache hit is served without touching the policy network and therefore
// succeeds even under an already-expired context only when the context was
// still live at entry (the entry check runs first).
func (a *Agent) GreedyPlanCtx(ctx context.Context, q *query.Query) (plan.Node, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	cache := a.Env.Planner.Cache
	if cache != nil {
		if e, ok := cache.Get(a.greedyKey(cache, q)); ok {
			// Mirror the uncached path's observable state: the episode "ran"
			// on q and ended with this plan.
			a.Env.cur = q
			a.Env.LastPlan, a.Env.LastCost = e.Plan, e.Cost.Total
			return e.Plan, e.Cost.Total, nil
		}
	}
	s := a.Env.ResetTo(q)
	for !s.Terminal {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		act := a.RL.Greedy(s)
		if act < 0 {
			break
		}
		next, _, done := a.Env.Step(act)
		s = next
		if done {
			break
		}
	}
	if cache != nil && a.Env.LastPlan != nil {
		cache.Put(a.greedyKey(cache, q), plancache.Entry{
			Plan: a.Env.LastPlan,
			Cost: cost.NodeCost{Total: a.Env.LastCost},
		})
	}
	return a.Env.LastPlan, a.Env.LastCost, nil
}
