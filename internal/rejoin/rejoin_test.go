package rejoin

import (
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/rl"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

type fixtureT struct {
	planner *optimizer.Planner
	est     *stats.Estimator
	queries []*query.Query
	maxRels int
}

func fixture(t *testing.T, nQueries, minRel, maxRel int) fixtureT {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	w := workload.New(db)
	qs, err := w.Training(nQueries, minRel, maxRel, 7)
	if err != nil {
		t.Fatal(err)
	}
	return fixtureT{planner: planner, est: est, queries: qs, maxRels: maxRel}
}

func TestEpisodeTerminatesWithValidPlan(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, Seed: 2})
	for ep := 0; ep < 20; ep++ {
		res := agent.TrainEpisode()
		if res.Plan == nil {
			t.Fatalf("episode %d produced no plan", ep)
		}
		if res.Cost <= 0 {
			t.Fatalf("episode %d cost = %v", ep, res.Cost)
		}
		leaves := plan.Leaves(res.Plan)
		if len(leaves) != len(res.Query.Relations) {
			t.Fatalf("episode %d: %d leaves for %d relations", ep, len(leaves), len(res.Query.Relations))
		}
	}
}

func TestEpisodeCyclesThroughWorkload(t *testing.T) {
	fx := fixture(t, 3, 4, 4)
	space := featurize.NewSpace(4, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, Seed: 3})
	seen := map[string]int{}
	for ep := 0; ep < 6; ep++ {
		res := agent.TrainEpisode()
		seen[res.Query.Name]++
	}
	for _, q := range fx.queries {
		if seen[q.Name] != 2 {
			t.Fatalf("query %s served %d times in 6 episodes over 3 queries", q.Name, seen[q.Name])
		}
	}
}

// TestConvergenceTowardExpert is the core §3 reproduction at miniature
// scale: after training, ReJOIN's greedy join orders should be close to the
// traditional optimizer's on the training workload, and far better than its
// own untrained policy.
func TestConvergenceTowardExpert(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := fixture(t, 6, 4, 6)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{64, 32}, BatchSize: 16, LR: 2e-3, Seed: 4})

	expert := map[string]float64{}
	for _, q := range fx.queries {
		planned, err := fx.planner.PlanWith(q, optimizer.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		expert[q.Name] = planned.Cost
	}
	avgRatio := func() float64 {
		total := 0.0
		for _, q := range fx.queries {
			_, c := agent.GreedyPlan(q)
			total += c / expert[q.Name]
		}
		return total / float64(len(fx.queries))
	}

	before := avgRatio()
	for ep := 0; ep < 4000; ep++ {
		agent.TrainEpisode()
	}
	after := avgRatio()
	t.Logf("avg cost ratio vs expert: before=%.2f after=%.2f", before, after)
	if after > before {
		t.Fatalf("training made the policy worse: %.3f → %.3f", before, after)
	}
	if after > 2.0 {
		t.Fatalf("after 4000 episodes the policy is still %.2f× the expert", after)
	}
}

func TestGreedyPlanDeterministic(t *testing.T) {
	fx := fixture(t, 3, 4, 5)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, Seed: 5})
	for ep := 0; ep < 50; ep++ {
		agent.TrainEpisode()
	}
	q := fx.queries[0]
	_, c1 := agent.GreedyPlan(q)
	_, c2 := agent.GreedyPlan(q)
	if c1 != c2 {
		t.Fatalf("greedy inference not deterministic: %v vs %v", c1, c2)
	}
}

func TestRewardKinds(t *testing.T) {
	fx := fixture(t, 2, 4, 4)
	space := featurize.NewSpace(4, fx.est)
	for _, kind := range []RewardKind{RewardNegLogCost, RewardReciprocal} {
		env := NewEnv(space, fx.planner, fx.queries, 1)
		env.Reward = kind
		s := env.Reset()
		var reward float64
		for !s.Terminal {
			act := -1
			for i, ok := range s.Mask {
				if ok {
					act = i
					break
				}
			}
			next, r, done := env.Step(act)
			reward = r
			s = next
			if done {
				break
			}
		}
		switch kind {
		case RewardReciprocal:
			if reward <= 0 || reward >= 1 {
				t.Fatalf("reciprocal reward = %v, want in (0,1)", reward)
			}
		case RewardNegLogCost:
			if reward >= 0 {
				t.Fatalf("neg-log reward = %v, want < 0 for cost > 1", reward)
			}
		}
	}
}

func TestDisallowCrossMasksDisconnectedPairs(t *testing.T) {
	fx := fixture(t, 4, 5, 5)
	space := featurize.NewSpace(5, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	env.DisallowCross = true
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, Seed: 6})
	for ep := 0; ep < 40; ep++ {
		res := agent.TrainEpisode()
		if res.Plan == nil {
			t.Fatal("no plan")
		}
		if plan.CrossProduct(res.Plan) {
			t.Fatal("cross product under DisallowCross on a connected query")
		}
	}
}
