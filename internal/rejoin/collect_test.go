package rejoin

import (
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/plancache"
	"handsfree/internal/rl"
)

// collectRun trains a fresh agent with the given worker count and returns
// the per-episode costs in result order.
func collectRun(t *testing.T, fx fixtureT, episodes, workers int) []float64 {
	t.Helper()
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 2})
	results := agent.TrainEpisodes(episodes, workers)
	if len(results) != episodes {
		t.Fatalf("TrainEpisodes returned %d results, want %d", len(results), episodes)
	}
	costs := make([]float64, len(results))
	for i, r := range results {
		if r.Plan == nil || r.Query == nil || r.Cost <= 0 {
			t.Fatalf("episode %d incomplete: plan=%v cost=%v", i, r.Plan, r.Cost)
		}
		costs[i] = r.Cost
	}
	return costs
}

// TestParallelCollectionDeterministic runs the same parallel training twice:
// worker envs and policy snapshots are seeded, and the merge order is a pure
// function of worker/episode indices, so the two runs must be identical.
func TestParallelCollectionDeterministic(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	a := collectRun(t, fx, 32, 4)
	b := collectRun(t, fx, 32, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d: cost %v vs %v across identical parallel runs", i, a[i], b[i])
		}
	}
}

// TestParallelCollectionCoversWorkload checks that staggered worker cursors
// serve every workload query during a parallel round.
func TestParallelCollectionCoversWorkload(t *testing.T) {
	fx := fixture(t, 4, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 8, Seed: 3})
	seen := map[string]int{}
	for _, r := range agent.TrainEpisodes(16, 4) {
		seen[r.Query.Name]++
	}
	for _, q := range fx.queries {
		if seen[q.Name] == 0 {
			t.Fatalf("query %s never served during parallel collection", q.Name)
		}
	}
}

// TestParallelCollectionTrainsPolicy verifies that the learner actually
// updates from parallel-collected trajectories.
func TestParallelCollectionTrainsPolicy(t *testing.T) {
	fx := fixture(t, 4, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 8, Seed: 4})
	agent.TrainEpisodes(40, 4)
	if agent.RL.Updates == 0 {
		t.Fatal("no policy updates after 40 parallel episodes with batch size 8")
	}
}

// TestParallelCollectionCacheTransparent: training with the plan cache
// enabled must produce bitwise-identical episode costs to training without
// it — completion memoization is pure — whether the cache starts cold or
// pre-warmed by an earlier run, and the cache must actually serve hits.
func TestParallelCollectionCacheTransparent(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	run := func(cache *plancache.Cache) []float64 {
		space := featurize.NewSpace(fx.maxRels, fx.est)
		env := NewEnv(space, fx.planner, fx.queries, 1)
		if cache != nil {
			env.UseCache(cache)
		}
		agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 2})
		results := agent.TrainEpisodes(32, 4)
		costs := make([]float64, len(results))
		for i, r := range results {
			costs[i] = r.Cost
		}
		return costs
	}
	plain := run(nil)
	cache := plancache.New(plancache.Config{Capacity: 4096, Shards: 8})
	cold := run(cache)
	warm := run(cache)
	for i := range plain {
		if plain[i] != cold[i] {
			t.Fatalf("episode %d: cost %v uncached vs %v cold-cached", i, plain[i], cold[i])
		}
		if plain[i] != warm[i] {
			t.Fatalf("episode %d: cost %v uncached vs %v warm-cached", i, plain[i], warm[i])
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("cache never hit during parallel collection: %+v", st)
	}
	if st.EpochBumps == 0 {
		t.Fatal("policy epoch never advanced across snapshot rounds")
	}
}

// TestGreedyPlanCacheInvalidatedByTraining: a greedy plan memoized for one
// policy version must not be served after the policy updates.
func TestGreedyPlanCacheInvalidatedByTraining(t *testing.T) {
	fx := fixture(t, 2, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	cache := plancache.New(plancache.Config{Capacity: 1024, Shards: 4})
	env := NewEnv(space, fx.planner, fx.queries, 1).UseCache(cache)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Seed: 3})
	q := fx.queries[0]

	plan1, cost1 := agent.GreedyPlan(q)
	if plan1 == nil {
		t.Fatal("no greedy plan")
	}
	// Served from cache while the policy is unchanged.
	hits := cache.Stats().Hits
	plan2, cost2 := agent.GreedyPlan(q)
	if cache.Stats().Hits != hits+1 {
		t.Fatal("repeated greedy evaluation did not hit the cache")
	}
	if plan2.Signature() != plan1.Signature() || cost2 != cost1 {
		t.Fatal("cached greedy plan differs from computed plan")
	}
	// The hit path must leave the same observable env state as a real run.
	if agent.Env.Current() != q || agent.Env.LastPlan != plan2 || agent.Env.LastCost != cost2 {
		t.Fatal("cache-hit GreedyPlan left stale environment state")
	}

	// Train past one policy update, then re-plan: the lookup key must have
	// rotated (a fresh miss or recompute, never a stale hit with different
	// content than a from-scratch evaluation would give).
	agent.TrainEpisodes(8, 2)
	if agent.RL.Updates == 0 {
		t.Fatal("test needs at least one policy update")
	}
	planAfter, costAfter := agent.GreedyPlan(q)
	fresh := NewAgent(NewEnv(space, fx.planner, fx.queries, 1), rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Seed: 3})
	fresh.TrainEpisodes(8, 2)
	wantPlan, wantCost := fresh.GreedyPlan(q)
	if planAfter.Signature() != wantPlan.Signature() || costAfter != wantCost {
		t.Fatalf("post-update greedy plan differs from uncached agent: cost %v vs %v", costAfter, wantCost)
	}
}

// TestGreedyPlanCachePerAgent: two agents sharing one plan cache must not
// serve each other's memoized greedy plans — each agent's entries are keyed
// by its own cache identity.
func TestGreedyPlanCachePerAgent(t *testing.T) {
	fx := fixture(t, 2, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	cache := plancache.New(plancache.Config{Capacity: 1024, Shards: 4})
	q := fx.queries[0]

	a := NewAgent(NewEnv(space, fx.planner, fx.queries, 1).UseCache(cache), rl.ReinforceConfig{Hidden: []int{16}, Seed: 3})
	b := NewAgent(NewEnv(space, fx.planner, fx.queries, 1).UseCache(cache), rl.ReinforceConfig{Hidden: []int{16}, Seed: 99})
	a.GreedyPlan(q) // populates A's entry for q

	// B must compute its own plan: identical to what B produces uncached.
	fresh := NewAgent(NewEnv(space, fx.planner, fx.queries, 1), rl.ReinforceConfig{Hidden: []int{16}, Seed: 99})
	gotPlan, gotCost := b.GreedyPlan(q)
	wantPlan, wantCost := fresh.GreedyPlan(q)
	if gotPlan.Signature() != wantPlan.Signature() || gotCost != wantCost {
		t.Fatalf("agent B served a foreign cached plan: cost %v, uncached agent gives %v", gotCost, wantCost)
	}
}

// TestGreedyPlanCacheInvalidatedByLoad: restoring a checkpoint must redraw
// the agent's cache identity so plans memoized for the old weights are
// unreachable.
func TestGreedyPlanCacheInvalidatedByLoad(t *testing.T) {
	fx := fixture(t, 2, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	cache := plancache.New(plancache.Config{Capacity: 1024, Shards: 4})
	q := fx.queries[0]

	// A differently-seeded, briefly trained donor policy to restore.
	donor := NewAgent(NewEnv(space, fx.planner, fx.queries, 1), rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Seed: 42})
	donor.TrainEpisodes(8, 1)
	ckpt, err := donor.Save()
	if err != nil {
		t.Fatal(err)
	}

	a := NewAgent(NewEnv(space, fx.planner, fx.queries, 1).UseCache(cache), rl.ReinforceConfig{Hidden: []int{16}, Seed: 3})
	a.GreedyPlan(q) // memoized under the pre-Load weights
	if err := a.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	gotPlan, gotCost := a.GreedyPlan(q)
	wantPlan, wantCost := donor.GreedyPlan(q)
	if gotPlan.Signature() != wantPlan.Signature() || gotCost != wantCost {
		t.Fatalf("post-Load greedy plan does not match the restored policy: cost %v, want %v", gotCost, wantCost)
	}
}
