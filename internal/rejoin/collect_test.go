package rejoin

import (
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/rl"
)

// collectRun trains a fresh agent with the given worker count and returns
// the per-episode costs in result order.
func collectRun(t *testing.T, fx fixtureT, episodes, workers int) []float64 {
	t.Helper()
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 2})
	results := agent.TrainEpisodes(episodes, workers)
	if len(results) != episodes {
		t.Fatalf("TrainEpisodes returned %d results, want %d", len(results), episodes)
	}
	costs := make([]float64, len(results))
	for i, r := range results {
		if r.Plan == nil || r.Query == nil || r.Cost <= 0 {
			t.Fatalf("episode %d incomplete: plan=%v cost=%v", i, r.Plan, r.Cost)
		}
		costs[i] = r.Cost
	}
	return costs
}

// TestParallelCollectionDeterministic runs the same parallel training twice:
// worker envs and policy snapshots are seeded, and the merge order is a pure
// function of worker/episode indices, so the two runs must be identical.
func TestParallelCollectionDeterministic(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	a := collectRun(t, fx, 32, 4)
	b := collectRun(t, fx, 32, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d: cost %v vs %v across identical parallel runs", i, a[i], b[i])
		}
	}
}

// TestParallelCollectionCoversWorkload checks that staggered worker cursors
// serve every workload query during a parallel round.
func TestParallelCollectionCoversWorkload(t *testing.T) {
	fx := fixture(t, 4, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 8, Seed: 3})
	seen := map[string]int{}
	for _, r := range agent.TrainEpisodes(16, 4) {
		seen[r.Query.Name]++
	}
	for _, q := range fx.queries {
		if seen[q.Name] == 0 {
			t.Fatalf("query %s never served during parallel collection", q.Name)
		}
	}
}

// TestParallelCollectionTrainsPolicy verifies that the learner actually
// updates from parallel-collected trajectories.
func TestParallelCollectionTrainsPolicy(t *testing.T) {
	fx := fixture(t, 4, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 8, Seed: 4})
	agent.TrainEpisodes(40, 4)
	if agent.RL.Updates == 0 {
		t.Fatal("no policy updates after 40 parallel episodes with batch size 8")
	}
}
