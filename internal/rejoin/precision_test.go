package rejoin

import (
	"testing"

	"handsfree/internal/featurize"
	"handsfree/internal/nn"
	"handsfree/internal/rl"
)

// TestF32TrainingConvergesOnSeedWorkload is the system-level half of the
// f32 tolerance-parity contract (the per-step bound lives in nn and rl):
// training ReJOIN entirely in float32 on the seed workload must reach final
// plan quality within the same 1.6× tolerance band the async-vs-sync test
// uses against the f64 reference. The f32 trajectory diverges from f64's
// after the first rounded softmax, so the comparison is outcome-level, not
// per-step.
func TestF32TrainingConvergesOnSeedWorkload(t *testing.T) {
	fx := fixture(t, 4, 4, 5)
	const episodes = 240

	build := func(p nn.Precision) *Agent {
		space := featurize.NewSpace(fx.maxRels, fx.est)
		env := NewEnv(space, fx.planner, fx.queries, 1)
		return NewAgent(env, rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Precision: p, Seed: 2})
	}

	ref := build(nn.F64)
	ref.TrainEpisodes(episodes, 1)
	refRatio := greedyRatio(t, fx, ref)

	f32 := build(nn.F32)
	if f32.RL.Policy.Precision() != nn.F32 {
		t.Fatal("agent did not build an f32 policy")
	}
	f32.TrainEpisodes(episodes, 1)
	f32Ratio := greedyRatio(t, fx, f32)

	t.Logf("greedy cost ratio vs optimizer: f64 %.3f, f32 %.3f", refRatio, f32Ratio)
	if f32Ratio > 1.6*refRatio {
		t.Fatalf("f32 final plan quality %.3f not within tolerance of f64 %.3f", f32Ratio, refRatio)
	}
}

// TestF32CheckpointRoundTripOnAgent: an f32 ReJOIN agent must save and
// restore through the rejoin-level Save/Load path (the versioned gob format
// carries the precision).
func TestF32CheckpointRoundTripOnAgent(t *testing.T) {
	fx := fixture(t, 3, 4, 4)
	space := featurize.NewSpace(fx.maxRels, fx.est)
	env := NewEnv(space, fx.planner, fx.queries, 1)
	agent := NewAgent(env, rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Precision: nn.F32, Seed: 3})
	for ep := 0; ep < 12; ep++ {
		agent.TrainEpisode()
	}
	data, err := agent.Save()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewAgent(NewEnv(space, fx.planner, fx.queries, 1),
		rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 4, Precision: nn.F32, Seed: 4})
	if err := restored.Load(data); err != nil {
		t.Fatal(err)
	}
	if restored.RL.Policy.Precision() != nn.F32 {
		t.Fatalf("restored precision %v, want f32", restored.RL.Policy.Precision())
	}
	for _, q := range fx.queries {
		p1, c1 := agent.GreedyPlan(q)
		p2, c2 := restored.GreedyPlan(q)
		if p1 == nil || p2 == nil || c1 != c2 {
			t.Fatalf("restored f32 agent plans %s at cost %v, original %v", q.Name, c2, c1)
		}
	}
}
