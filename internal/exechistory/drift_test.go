package exechistory

import (
	"math"
	"testing"
)

// TestDriftNeverTriggersFromDegenerateWindows is the satellite edge-table:
// drift must never trip off empty, single-sample, NaN/Inf, or expert-only
// history — only a sustained, well-evidenced degraded ratio trips it.
func TestDriftNeverTriggersFromDegenerateWindows(t *testing.T) {
	mkStore := func() *Store { return New(Config{Window: 8, MinLearned: 3, MinExpert: 2}) }
	cases := []struct {
		name string
		feed func(s *Store, fp uint64)
	}{
		{"no history", func(s *Store, fp uint64) {}},
		{"single learned sample", func(s *Store, fp uint64) {
			s.Record(fp, rec(Learned, 1e9))
		}},
		{"single sample each side", func(s *Store, fp uint64) {
			s.Record(fp, rec(Learned, 1e9))
			s.Record(fp, rec(Expert, 1))
		}},
		{"NaN and Inf latencies", func(s *Store, fp uint64) {
			for i := 0; i < 16; i++ {
				s.Record(fp, rec(Learned, math.NaN()))
				s.Record(fp, rec(Learned, math.Inf(1)))
				s.Record(fp, rec(Expert, math.NaN()))
			}
		}},
		{"expert-only history", func(s *Store, fp uint64) {
			for i := 0; i < 16; i++ {
				s.Record(fp, rec(Expert, 10))
			}
		}},
		{"learned-only history", func(s *Store, fp uint64) {
			for i := 0; i < 16; i++ {
				s.Record(fp, rec(Learned, 1e9))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mkStore()
			d := NewDetector(DriftConfig{Ratio: 1.5, Sustain: 2})
			const fp = 11
			tc.feed(s, fp)
			for i := 0; i < 32; i++ {
				r, _, _ := s.Ratio(fp)
				if d.Observe(fp, r) {
					t.Fatalf("drift tripped on observation %d with ratio %v", i, r)
				}
			}
			if d.Trips() != 0 {
				t.Fatalf("trips = %d, want 0", d.Trips())
			}
		})
	}
}

func TestDriftRequiresSustainedDegradation(t *testing.T) {
	d := NewDetector(DriftConfig{Ratio: 1.5, Sustain: 3})
	const fp = 5

	// Threshold crossings interrupted by healthy observations never trip.
	for i := 0; i < 10; i++ {
		if d.Observe(fp, 9.0) {
			t.Fatal("tripped on first degraded observation")
		}
		if d.Observe(fp, 9.0) {
			t.Fatal("tripped below Sustain")
		}
		if d.Observe(fp, 1.0) { // healthy: streak resets
			t.Fatal("tripped on a healthy observation")
		}
	}
	// A degenerate observation mid-streak also breaks "consecutive".
	d.Observe(fp, 9.0)
	d.Observe(fp, 9.0)
	d.Observe(fp, math.NaN())
	if d.Observe(fp, 9.0) || d.Observe(fp, 9.0) {
		t.Fatal("NaN should have reset the streak")
	}
	// Sustained degradation trips exactly once, then re-arms.
	if !d.Observe(fp, 9.0) {
		t.Fatal("third consecutive degraded observation should trip")
	}
	if d.Observe(fp, 9.0) || d.Observe(fp, 9.0) {
		t.Fatal("trip should reset the streak")
	}
	if !d.Observe(fp, 9.0) {
		t.Fatal("degradation re-accumulated to Sustain should re-trip")
	}
	if d.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", d.Trips())
	}
	if w := d.WorstRatio(); w != 9.0 {
		t.Fatalf("worst ratio = %v, want 9", w)
	}
}

func TestDriftStreaksArePerFingerprint(t *testing.T) {
	d := NewDetector(DriftConfig{Ratio: 1.5, Sustain: 2})
	// Interleaved traffic on a healthy fingerprint must not break the
	// degraded one's streak.
	if d.Observe(1, 5.0) {
		t.Fatal("early trip")
	}
	d.Observe(2, 1.0)
	if !d.Observe(1, 5.0) {
		t.Fatal("fingerprint 1 should trip despite fingerprint 2's health")
	}
}

func TestDriftDisabled(t *testing.T) {
	d := NewDetector(DriftConfig{Ratio: -1})
	for i := 0; i < 100; i++ {
		if d.Observe(1, 1e9) {
			t.Fatal("disabled detector tripped")
		}
	}
}

func TestDriftReset(t *testing.T) {
	d := NewDetector(DriftConfig{Ratio: 1.5, Sustain: 3})
	d.Observe(1, 9.0)
	d.Observe(1, 9.0)
	d.Reset()
	if !math.IsNaN(d.WorstRatio()) {
		t.Fatalf("worst ratio after reset = %v, want NaN", d.WorstRatio())
	}
	if d.Observe(1, 9.0) || d.Observe(1, 9.0) {
		t.Fatal("Reset should clear streaks")
	}
}

// TestStreakAccessor: the live streak count rises with sustained degraded
// observations, resets on healthy or degenerate ones, and returns to zero
// the moment a trip fires (one incident reports once).
func TestStreakAccessor(t *testing.T) {
	d := NewDetector(DriftConfig{Ratio: 2.0, Sustain: 3})
	const fp = uint64(9)
	if d.Streak(fp) != 0 {
		t.Fatalf("unknown fingerprint streak %d", d.Streak(fp))
	}
	d.Observe(fp, 5.0)
	d.Observe(fp, 5.0)
	if d.Streak(fp) != 2 {
		t.Fatalf("streak after two degraded observations: %d", d.Streak(fp))
	}
	d.Observe(fp, 1.0) // healthy resets
	if d.Streak(fp) != 0 {
		t.Fatalf("streak after recovery: %d", d.Streak(fp))
	}
	d.Observe(fp, 5.0)
	d.Observe(fp, math.NaN()) // no-evidence resets too
	if d.Streak(fp) != 0 {
		t.Fatalf("streak after degenerate observation: %d", d.Streak(fp))
	}
	if d.Observe(fp, 5.0) || d.Observe(fp, 5.0) || !d.Observe(fp, 5.0) {
		t.Fatal("expected a trip on the third consecutive degraded observation")
	}
	if d.Streak(fp) != 0 {
		t.Fatalf("streak after trip: %d", d.Streak(fp))
	}
}
