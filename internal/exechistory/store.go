// Package exechistory is the execution-feedback memory of the hands-free
// optimizer: a bounded, concurrency-safe store of observed execution
// latencies keyed by query fingerprint, split per fingerprint into a learned
// window and an expert window (ring buffers), from which it derives the
// rolling learned/expert latency ratio behind the service's latency guard
// and drift detector.
//
// Bounds: at most MaxFingerprints fingerprints are tracked (LRU eviction),
// each holding at most Window samples per side — so memory is O(Window ×
// MaxFingerprints) regardless of traffic. Global snapshot stats are
// maintained as running counters and cost O(1) to read.
package exechistory

import (
	"container/list"
	"math"
	"sort"
	"sync"
)

// Kind classifies which plan produced a recorded latency.
type Kind int

const (
	// Expert: the traditional optimizer's plan (served, fallback, or a
	// shadow probe keeping the baseline fresh).
	Expert Kind = iota
	// Learned: the learned policy's plan.
	Learned
)

// Record is one observed execution.
type Record struct {
	Kind Kind
	// LatencyMs is the observed latency. Non-finite or non-positive values
	// are rejected (counted, never stored): a degenerate observation must
	// never move a rolling ratio.
	LatencyMs float64
	// PolicyVersion is the policy snapshot that produced the plan (0 for
	// expert plans).
	PolicyVersion uint64
	// TimedOut marks a budget-censored latency.
	TimedOut bool
	// Source, when non-empty, names the serving decision behind this
	// execution ("learned", "expert", "fallback", "latency-guard",
	// "demonstration") and becomes the fingerprint's last recorded source.
	// Records that are not serving decisions (expert shadow probes) leave it
	// empty and do not disturb the remembered source.
	Source string
}

// Config bounds and tunes a Store. The zero value selects the defaults.
type Config struct {
	// Window is the per-(fingerprint, kind) ring capacity (default 32).
	Window int
	// MaxFingerprints bounds tracked fingerprints; the least recently
	// recorded fingerprint is evicted at the bound (default 4096).
	MaxFingerprints int
	// MinLearned / MinExpert are how many samples each window needs before
	// Ratio is defined (defaults 4 and 2): a single lucky or unlucky sample
	// must never trip a guard.
	MinLearned int
	MinExpert  int
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MaxFingerprints <= 0 {
		c.MaxFingerprints = 4096
	}
	if c.MinLearned <= 0 {
		c.MinLearned = 4
	}
	if c.MinExpert <= 0 {
		c.MinExpert = 2
	}
}

// ring is a fixed-capacity latency window.
type ring struct {
	vals []float64
	vers []uint64
	next int
	full bool
}

func (r *ring) push(capacity int, v float64, ver uint64) {
	if r.vals == nil {
		r.vals = make([]float64, capacity)
		r.vers = make([]uint64, capacity)
	}
	r.vals[r.next] = v
	r.vers[r.next] = ver
	r.next++
	if r.next == len(r.vals) {
		r.next, r.full = 0, true
	}
}

func (r *ring) n() int {
	if r.full {
		return len(r.vals)
	}
	return r.next
}

// mean sums the window in sorted order, so the value is a pure function of
// the sample multiset: as long as a fingerprint has not wrapped its window,
// the ratio is exactly permutation-invariant over insertion order.
func (r *ring) mean(scratch []float64) (float64, []float64) {
	n := r.n()
	if n == 0 {
		return math.NaN(), scratch
	}
	scratch = append(scratch[:0], r.vals[:n]...)
	sort.Float64s(scratch)
	sum := 0.0
	for _, v := range scratch {
		sum += v
	}
	return sum / float64(n), scratch
}

func (r *ring) reset() {
	r.next, r.full = 0, false
}

type entry struct {
	fp      uint64
	elem    *list.Element
	learned ring
	expert  ring
	// sinceExpert counts learned records since the last expert one — the
	// clock for shadow expert probes.
	sinceExpert int
	// lastSource is the most recent non-empty Record.Source — the serving
	// decision that last touched this fingerprint.
	lastSource string
}

// Store is the bounded execution-history store.
type Store struct {
	cfg Config

	mu      sync.Mutex
	m       map[uint64]*entry
	order   *list.List // front = most recently recorded
	scratch []float64

	// O(1) global counters.
	records, learned, expert   uint64
	rejected, timedOut, failed uint64
	evictions, learnedFlushes  uint64
	learnedHeld, expertHeld    int // samples currently held across all rings
}

// New builds a store.
func New(cfg Config) *Store {
	cfg.fill()
	return &Store{cfg: cfg, m: make(map[uint64]*entry), order: list.New()}
}

// Config returns the bounds in force.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) entryFor(fp uint64) *entry {
	e, ok := s.m[fp]
	if ok {
		s.order.MoveToFront(e.elem)
		return e
	}
	if len(s.m) >= s.cfg.MaxFingerprints {
		oldest := s.order.Back()
		old := oldest.Value.(*entry)
		s.learnedHeld -= old.learned.n()
		s.expertHeld -= old.expert.n()
		s.order.Remove(oldest)
		delete(s.m, old.fp)
		s.evictions++
	}
	e = &entry{fp: fp}
	e.elem = s.order.PushFront(e)
	s.m[fp] = e
	return e
}

// Record stores one observation, returning false when the latency is
// degenerate (NaN/Inf/≤0) and was rejected.
func (s *Store) Record(fp uint64, r Record) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if math.IsNaN(r.LatencyMs) || math.IsInf(r.LatencyMs, 0) || r.LatencyMs <= 0 {
		s.rejected++
		return false
	}
	e := s.entryFor(fp)
	s.records++
	if r.Source != "" {
		e.lastSource = r.Source
	}
	if r.TimedOut {
		s.timedOut++
	}
	switch r.Kind {
	case Learned:
		if e.learned.n() < s.cfg.Window {
			s.learnedHeld++
		}
		e.learned.push(s.cfg.Window, r.LatencyMs, r.PolicyVersion)
		e.sinceExpert++
		s.learned++
	default:
		if e.expert.n() < s.cfg.Window {
			s.expertHeld++
		}
		e.expert.push(s.cfg.Window, r.LatencyMs, r.PolicyVersion)
		e.sinceExpert = 0
		s.expert++
	}
	return true
}

// RecordFailure counts a failed execution (no latency to store).
func (s *Store) RecordFailure(fp uint64) {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

// Ratio returns the fingerprint's rolling learned/expert mean-latency ratio
// and the window sizes it was computed from. The ratio is NaN — "no
// verdict" — until both windows hold their configured minimum samples, so
// empty, single-sample, or expert-only histories can never trip a guard.
func (s *Store) Ratio(fp uint64) (ratio float64, learnedN, expertN int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[fp]
	if !ok {
		return math.NaN(), 0, 0
	}
	learnedN, expertN = e.learned.n(), e.expert.n()
	if learnedN < s.cfg.MinLearned || expertN < s.cfg.MinExpert {
		return math.NaN(), learnedN, expertN
	}
	var lm, em float64
	lm, s.scratch = e.learned.mean(s.scratch)
	em, s.scratch = e.expert.mean(s.scratch)
	if !(em > 0) {
		return math.NaN(), learnedN, expertN
	}
	return lm / em, learnedN, expertN
}

// NeedExpertProbe reports whether the fingerprint's expert baseline is stale:
// no expert sample is held, or `every` learned executions have been recorded
// since the last expert one. Unknown fingerprints need no probe (the first
// recorded execution will seed them).
func (s *Store) NeedExpertProbe(fp uint64, every int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[fp]
	if !ok {
		return false
	}
	if e.expert.n() == 0 {
		return true
	}
	return every > 0 && e.sinceExpert >= every
}

// FlushLearned clears every learned window (the expert baselines survive).
// It is the drift re-entry "probation" step: after a policy retrains, the
// latencies its predecessor observed say nothing about the new policy, so
// the guard and detector restart from no-verdict instead of holding the
// incident against the fresh policy.
func (s *Store) FlushLearned() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.m {
		e.learned.reset()
		e.sinceExpert = 0
	}
	s.learnedHeld = 0
	s.learnedFlushes++
}

// Stats is an O(1) snapshot of the store's global counters.
type Stats struct {
	// Fingerprints is how many fingerprints are currently tracked;
	// Evictions counts fingerprints dropped at the bound.
	Fingerprints int
	Evictions    uint64
	// Records splits into Learned + Expert; Rejected counts degenerate
	// latencies turned away; TimedOut counts budget-censored records;
	// Failures counts RecordFailure calls.
	Records, Learned, Expert uint64
	Rejected, TimedOut       uint64
	Failures                 uint64
	// LearnedHeld / ExpertHeld are the samples currently held across all
	// windows; LearnedFlushes counts FlushLearned calls.
	LearnedHeld, ExpertHeld int
	LearnedFlushes          uint64
}

// Entry is one fingerprint's point-in-time history snapshot.
type Entry struct {
	// Fingerprint is the query fingerprint the entry is tracked under.
	Fingerprint uint64
	// Ratio is the rolling learned/expert mean-latency ratio, NaN until both
	// windows hold their configured minimums (exactly Ratio's semantics).
	Ratio float64
	// LearnedN / ExpertN are the current window sizes.
	LearnedN, ExpertN int
	// LastSource is the serving decision that last touched the fingerprint
	// ("" when only sourceless records — e.g. shadow probes — have landed).
	LastSource string
}

// Entries snapshots up to max tracked fingerprints (all of them when max
// ≤ 0), most recently recorded first — the per-fingerprint view behind the
// aggregate Stats. Cost is O(returned × Window log Window) for the ratio
// means; callers on a serving path should bound max.
func (s *Store) Entries(max int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.m)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Entry, 0, n)
	for el := s.order.Front(); el != nil && len(out) < n; el = el.Next() {
		e := el.Value.(*entry)
		ent := Entry{
			Fingerprint: e.fp,
			Ratio:       math.NaN(),
			LearnedN:    e.learned.n(),
			ExpertN:     e.expert.n(),
			LastSource:  e.lastSource,
		}
		if ent.LearnedN >= s.cfg.MinLearned && ent.ExpertN >= s.cfg.MinExpert {
			var lm, em float64
			lm, s.scratch = e.learned.mean(s.scratch)
			em, s.scratch = e.expert.mean(s.scratch)
			if em > 0 {
				ent.Ratio = lm / em
			}
		}
		out = append(out, ent)
	}
	return out
}

// Stats snapshots the global counters (O(1): no window is walked).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Fingerprints:   len(s.m),
		Evictions:      s.evictions,
		Records:        s.records,
		Learned:        s.learned,
		Expert:         s.expert,
		Rejected:       s.rejected,
		TimedOut:       s.timedOut,
		Failures:       s.failed,
		LearnedHeld:    s.learnedHeld,
		ExpertHeld:     s.expertHeld,
		LearnedFlushes: s.learnedFlushes,
	}
}
