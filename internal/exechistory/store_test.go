package exechistory

import (
	"math"
	"math/rand"
	"testing"
)

func rec(k Kind, lat float64) Record { return Record{Kind: k, LatencyMs: lat} }

// TestStoreBoundProperty drives random traffic far past every bound and
// asserts the store never exceeds them: the property half of the
// "bounded, concurrency-safe" contract.
func TestStoreBoundProperty(t *testing.T) {
	cfg := Config{Window: 8, MaxFingerprints: 16, MinLearned: 2, MinExpert: 1}
	s := New(cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		fp := uint64(rng.Intn(200)) // 200 fingerprints into a 16-slot store
		k := Expert
		if rng.Intn(2) == 0 {
			k = Learned
		}
		s.Record(fp, rec(k, 1+rng.Float64()*100))
		if i%997 == 0 {
			st := s.Stats()
			if st.Fingerprints > cfg.MaxFingerprints {
				t.Fatalf("fingerprints %d exceeds bound %d", st.Fingerprints, cfg.MaxFingerprints)
			}
			if st.LearnedHeld > cfg.MaxFingerprints*cfg.Window || st.ExpertHeld > cfg.MaxFingerprints*cfg.Window {
				t.Fatalf("held samples (%d learned, %d expert) exceed %d", st.LearnedHeld, st.ExpertHeld, cfg.MaxFingerprints*cfg.Window)
			}
		}
	}
	st := s.Stats()
	if st.Fingerprints != cfg.MaxFingerprints {
		t.Fatalf("expected store full at %d fingerprints, got %d", cfg.MaxFingerprints, st.Fingerprints)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under 200 fingerprints of traffic")
	}
	if st.Records != st.Learned+st.Expert {
		t.Fatalf("records %d != learned %d + expert %d", st.Records, st.Learned, st.Expert)
	}
}

// TestRatioPermutationInvariant asserts the rolling ratio is exactly (not
// approximately) a function of the sample multiset: any insertion order of
// the same latencies yields the bitwise-identical ratio.
func TestRatioPermutationInvariant(t *testing.T) {
	learned := []float64{12.5, 3.75, 99.125, 41.0, 7.25, 18.5}
	expert := []float64{10.0, 11.5, 9.25, 13.75}
	const fp = uint64(7)

	ratioFor := func(perm []int, eperm []int) float64 {
		s := New(Config{Window: 16, MinLearned: 1, MinExpert: 1})
		for _, i := range perm {
			s.Record(fp, rec(Learned, learned[i]))
		}
		for _, i := range eperm {
			s.Record(fp, rec(Expert, expert[i]))
		}
		r, _, _ := s.Ratio(fp)
		return r
	}

	base := ratioFor([]int{0, 1, 2, 3, 4, 5}, []int{0, 1, 2, 3})
	if math.IsNaN(base) {
		t.Fatal("base ratio undefined")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		lp := rng.Perm(len(learned))
		ep := rng.Perm(len(expert))
		if got := ratioFor(lp, ep); got != base {
			t.Fatalf("permutation %v/%v ratio %v != base %v", lp, ep, got, base)
		}
	}
	// Interleaving kinds must not matter either.
	s := New(Config{Window: 16, MinLearned: 1, MinExpert: 1})
	for i := 0; i < 6 || i < 4; i++ {
		if i < 4 {
			s.Record(fp, rec(Expert, expert[i]))
		}
		if i < 6 {
			s.Record(fp, rec(Learned, learned[i]))
		}
	}
	if got, _, _ := s.Ratio(fp); got != base {
		t.Fatalf("interleaved ratio %v != base %v", got, base)
	}
}

func TestRecordRejectsDegenerateLatencies(t *testing.T) {
	s := New(Config{MinLearned: 1, MinExpert: 1})
	const fp = 1
	for _, lat := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -5} {
		if s.Record(fp, rec(Learned, lat)) {
			t.Fatalf("latency %v accepted", lat)
		}
		if s.Record(fp, rec(Expert, lat)) {
			t.Fatalf("expert latency %v accepted", lat)
		}
	}
	st := s.Stats()
	if st.Rejected != 10 || st.Records != 0 {
		t.Fatalf("stats = %+v, want 10 rejected / 0 records", st)
	}
	if r, ln, en := s.Ratio(fp); !math.IsNaN(r) || ln != 0 || en != 0 {
		t.Fatalf("ratio after rejects = %v (%d/%d), want NaN (0/0)", r, ln, en)
	}
}

func TestRatioUndefinedBelowMinimums(t *testing.T) {
	s := New(Config{Window: 8, MinLearned: 3, MinExpert: 2})
	const fp = 9
	// Unknown fingerprint.
	if r, _, _ := s.Ratio(fp); !math.IsNaN(r) {
		t.Fatalf("unknown fingerprint ratio = %v, want NaN", r)
	}
	// Expert-only history.
	for i := 0; i < 8; i++ {
		s.Record(fp, rec(Expert, 10))
	}
	if r, _, _ := s.Ratio(fp); !math.IsNaN(r) {
		t.Fatalf("expert-only ratio = %v, want NaN", r)
	}
	// Learned side below minimum.
	s.Record(fp, rec(Learned, 1000))
	s.Record(fp, rec(Learned, 1000))
	if r, _, _ := s.Ratio(fp); !math.IsNaN(r) {
		t.Fatalf("under-sampled ratio = %v, want NaN", r)
	}
	s.Record(fp, rec(Learned, 1000))
	if r, _, _ := s.Ratio(fp); r != 100 {
		t.Fatalf("ratio = %v, want 100", r)
	}
}

func TestFlushLearnedKeepsExpertBaseline(t *testing.T) {
	s := New(Config{Window: 8, MinLearned: 1, MinExpert: 1})
	const fp = 4
	for i := 0; i < 4; i++ {
		s.Record(fp, rec(Learned, 50))
		s.Record(fp, rec(Expert, 10))
	}
	if r, _, _ := s.Ratio(fp); r != 5 {
		t.Fatalf("pre-flush ratio = %v, want 5", r)
	}
	s.FlushLearned()
	r, ln, en := s.Ratio(fp)
	if !math.IsNaN(r) || ln != 0 || en != 4 {
		t.Fatalf("post-flush ratio = %v (%d/%d), want NaN (0/4)", r, ln, en)
	}
	st := s.Stats()
	if st.LearnedHeld != 0 || st.ExpertHeld != 4 || st.LearnedFlushes != 1 {
		t.Fatalf("post-flush stats = %+v", st)
	}
	// The next learned samples rebuild a fresh (healthy) verdict.
	for i := 0; i < 2; i++ {
		s.Record(fp, rec(Learned, 10))
	}
	if r, _, _ := s.Ratio(fp); r != 1 {
		t.Fatalf("recovered ratio = %v, want 1", r)
	}
}

func TestNeedExpertProbe(t *testing.T) {
	s := New(Config{Window: 8})
	const fp = 2
	if s.NeedExpertProbe(fp, 4) {
		t.Fatal("unknown fingerprint should not demand a probe")
	}
	s.Record(fp, rec(Learned, 5))
	if !s.NeedExpertProbe(fp, 4) {
		t.Fatal("learned-only history needs an expert baseline")
	}
	s.Record(fp, rec(Expert, 5))
	if s.NeedExpertProbe(fp, 4) {
		t.Fatal("fresh baseline should not demand a probe")
	}
	for i := 0; i < 4; i++ {
		s.Record(fp, rec(Learned, 5))
	}
	if !s.NeedExpertProbe(fp, 4) {
		t.Fatal("baseline stale after `every` learned records")
	}
}

func TestRingWrapEvictsOldest(t *testing.T) {
	s := New(Config{Window: 4, MinLearned: 1, MinExpert: 1})
	const fp = 3
	s.Record(fp, rec(Expert, 10))
	// Fill the learned window with 100s, then wrap it with 10s: the ratio
	// must converge to the fresh window.
	for i := 0; i < 4; i++ {
		s.Record(fp, rec(Learned, 100))
	}
	if r, _, _ := s.Ratio(fp); r != 10 {
		t.Fatalf("full-window ratio = %v, want 10", r)
	}
	for i := 0; i < 4; i++ {
		s.Record(fp, rec(Learned, 10))
	}
	if r, _, _ := s.Ratio(fp); r != 1 {
		t.Fatalf("wrapped-window ratio = %v, want 1", r)
	}
	if st := s.Stats(); st.LearnedHeld != 4 {
		t.Fatalf("learned held = %d, want 4 (window)", st.LearnedHeld)
	}
}

// TestEntries pins the per-fingerprint snapshot: recency ordering, the max
// bound, Ratio following exactly Ratio()'s no-verdict rules, and LastSource
// remembering the latest non-empty source while sourceless records (shadow
// probes) leave it untouched.
func TestEntries(t *testing.T) {
	s := New(Config{Window: 8, MinLearned: 2, MinExpert: 1})

	s.Record(1, Record{Kind: Expert, LatencyMs: 10, Source: "expert"})
	s.Record(2, Record{Kind: Learned, LatencyMs: 5, Source: "learned"})
	s.Record(2, Record{Kind: Learned, LatencyMs: 15, Source: "learned"})
	s.Record(2, Record{Kind: Expert, LatencyMs: 10}) // sourceless probe
	s.Record(3, Record{Kind: Expert, LatencyMs: 1, Source: "demonstration"})

	all := s.Entries(0)
	if len(all) != 3 {
		t.Fatalf("entries: %+v", all)
	}
	// Most recently recorded first: 3, 2, 1.
	if all[0].Fingerprint != 3 || all[1].Fingerprint != 2 || all[2].Fingerprint != 1 {
		t.Fatalf("recency order: %+v", all)
	}
	if got := s.Entries(2); len(got) != 2 || got[0].Fingerprint != 3 || got[1].Fingerprint != 2 {
		t.Fatalf("bounded entries: %+v", got)
	}

	e2 := all[1]
	if e2.LearnedN != 2 || e2.ExpertN != 1 {
		t.Fatalf("fp 2 windows: %+v", e2)
	}
	if e2.LastSource != "learned" {
		t.Fatalf("fp 2 last source %q: a sourceless probe must not overwrite it", e2.LastSource)
	}
	if want := (5.0 + 15.0) / 2 / 10.0; e2.Ratio != want {
		t.Fatalf("fp 2 ratio %v, want %v", e2.Ratio, want)
	}
	// fp 1 and 3 hold no learned samples: no verdict.
	if !math.IsNaN(all[0].Ratio) || !math.IsNaN(all[2].Ratio) {
		t.Fatalf("underfilled windows must have NaN ratios: %+v", all)
	}
	if all[2].LastSource != "expert" || all[0].LastSource != "demonstration" {
		t.Fatalf("last sources: %+v", all)
	}

	// Entries and Ratio must agree exactly for every fingerprint.
	for _, e := range all {
		r, ln, en := s.Ratio(e.Fingerprint)
		sameNaN := math.IsNaN(r) && math.IsNaN(e.Ratio)
		if (r != e.Ratio && !sameNaN) || ln != e.LearnedN || en != e.ExpertN {
			t.Fatalf("Entries %+v disagrees with Ratio (%v, %d, %d)", e, r, ln, en)
		}
	}
}
