package exechistory

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestSaveLoadRoundTrip: a dump restores every window's contents (ratios
// identical), the probe clock, the remembered serving source, and the
// recency order.
func TestSaveLoadRoundTrip(t *testing.T) {
	src := New(Config{Window: 4, MinLearned: 2, MinExpert: 2})
	for fp := uint64(1); fp <= 3; fp++ {
		for i := 0; i < 6; i++ { // wraps the window: only the newest 4 survive
			src.Record(fp, Record{Kind: Learned, LatencyMs: float64(fp*100 + uint64(i)), PolicyVersion: uint64(i), Source: "learned"})
			src.Record(fp, Record{Kind: Expert, LatencyMs: float64(fp*200 + uint64(i))})
		}
	}
	src.Record(2, Record{Kind: Learned, LatencyMs: 250, Source: "latency-guard"})

	var buf bytes.Buffer
	if err := src.Save(&buf, 42); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Window: 4, MinLearned: 2, MinExpert: 2})
	restored, err := dst.Load(bytes.NewReader(buf.Bytes()), 42)
	if err != nil {
		t.Fatal(err)
	}
	wantHeld := src.Stats().LearnedHeld + src.Stats().ExpertHeld
	if restored != wantHeld {
		t.Fatalf("restored %d records, want the %d held samples", restored, wantHeld)
	}
	for fp := uint64(1); fp <= 3; fp++ {
		sr, sl, se := src.Ratio(fp)
		dr, dl, de := dst.Ratio(fp)
		if sl != dl || se != de {
			t.Fatalf("fp %d: window sizes %d/%d, want %d/%d", fp, dl, de, sl, se)
		}
		if math.IsNaN(sr) != math.IsNaN(dr) || (!math.IsNaN(sr) && math.Abs(sr-dr) > 1e-12) {
			t.Fatalf("fp %d: ratio %v, want %v", fp, dr, sr)
		}
	}
	// Recency order and per-entry metadata survive: fingerprint 2 recorded
	// last, with its guard-forced source remembered.
	srcEnts, dstEnts := src.Entries(0), dst.Entries(0)
	if len(dstEnts) != len(srcEnts) {
		t.Fatalf("entries %d, want %d", len(dstEnts), len(srcEnts))
	}
	for i := range srcEnts {
		if dstEnts[i].Fingerprint != srcEnts[i].Fingerprint {
			t.Fatalf("recency order differs at %d: %d vs %d", i, dstEnts[i].Fingerprint, srcEnts[i].Fingerprint)
		}
		if dstEnts[i].LastSource != srcEnts[i].LastSource {
			t.Fatalf("fp %d: last source %q, want %q", srcEnts[i].Fingerprint, dstEnts[i].LastSource, srcEnts[i].LastSource)
		}
	}
	// The probe clock survives: fingerprint 2's trailing learned execution
	// left sinceExpert at 1, so a probe is due after one more at every=2.
	if !dst.NeedExpertProbe(2, 1) {
		t.Fatal("restored probe clock lost the pending learned execution")
	}
	if dst.NeedExpertProbe(1, 2) {
		t.Fatal("fingerprint 1 ended on an expert record; no probe should be due")
	}
}

// TestLoadRejectsWrongTagAndVersion: a dump from a differently configured
// system (or a future format) never loads.
func TestLoadRejectsWrongTagAndVersion(t *testing.T) {
	src := New(Config{})
	src.Record(7, Record{Kind: Expert, LatencyMs: 5})
	var buf bytes.Buffer
	if err := src.Save(&buf, 1); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{})
	if _, err := dst.Load(bytes.NewReader(buf.Bytes()), 2); err == nil ||
		!strings.Contains(err.Error(), "different system configuration") {
		t.Fatalf("tag mismatch: %v", err)
	}
	if n := dst.Stats().Records; n != 0 {
		t.Fatalf("rejected dump still restored %d records", n)
	}
	if _, err := dst.Load(strings.NewReader("not a gob dump"), 1); err == nil {
		t.Fatal("garbage dump loaded")
	}
}

// TestLoadAppliesReceiverBounds: a store with a smaller window keeps only
// each fingerprint's newest samples, exactly as live traffic would.
func TestLoadAppliesReceiverBounds(t *testing.T) {
	src := New(Config{Window: 8})
	for i := 0; i < 8; i++ {
		src.Record(1, Record{Kind: Expert, LatencyMs: float64(i + 1)})
	}
	var buf bytes.Buffer
	if err := src.Save(&buf, 9); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Window: 2, MinLearned: 1, MinExpert: 1})
	if _, err := dst.Load(bytes.NewReader(buf.Bytes()), 9); err != nil {
		t.Fatal(err)
	}
	if _, _, en := dst.Ratio(1); en != 2 {
		t.Fatalf("expert window holds %d samples, want the receiver's bound 2", en)
	}
	if held := dst.Stats().ExpertHeld; held != 2 {
		t.Fatalf("held counter %d, want 2", held)
	}
}
