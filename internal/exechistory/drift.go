package exechistory

import (
	"math"
	"sync"
)

// DriftConfig tunes the drift detector. The zero value selects the defaults.
type DriftConfig struct {
	// Ratio is the degradation threshold on the rolling learned/expert
	// latency ratio (default 2.0). Negative disables detection.
	Ratio float64
	// Sustain is how many consecutive degraded observations one fingerprint
	// must accumulate before drift trips (default 6): a lone spike is noise,
	// a sustained regression is drift.
	Sustain int
}

func (c *DriftConfig) fill() {
	if c.Ratio == 0 {
		c.Ratio = 2.0
	}
	if c.Sustain <= 0 {
		c.Sustain = 6
	}
}

// Detector turns per-execution rolling ratios into a drift verdict: when any
// single fingerprint's ratio stays above the threshold for Sustain
// consecutive observations, Observe reports a trip. Degenerate ratios
// (NaN/Inf — empty, under-sampled, or just-flushed windows) never advance a
// streak, so drift can never trigger off missing evidence.
type Detector struct {
	cfg DriftConfig

	mu      sync.Mutex
	streaks map[uint64]int
	trips   uint64
	// worst is the highest finite ratio observed since the last Reset.
	worst float64
}

// NewDetector builds a detector.
func NewDetector(cfg DriftConfig) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, streaks: make(map[uint64]int), worst: math.NaN()}
}

// Config returns the thresholds in force.
func (d *Detector) Config() DriftConfig { return d.cfg }

// Observe feeds one post-execution rolling ratio for a fingerprint and
// reports whether that fingerprint's degradation just became sustained. A
// healthy or degenerate observation resets the fingerprint's streak (healthy
// evidence and no-evidence both break "consecutive"). A trip resets the
// streak too, so one incident reports once until degradation re-accumulates.
func (d *Detector) Observe(fp uint64, ratio float64) bool {
	if d.cfg.Ratio < 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		delete(d.streaks, fp)
		return false
	}
	if math.IsNaN(d.worst) || ratio > d.worst {
		d.worst = ratio
	}
	if ratio <= d.cfg.Ratio {
		delete(d.streaks, fp)
		return false
	}
	d.streaks[fp]++
	if d.streaks[fp] < d.cfg.Sustain {
		return false
	}
	delete(d.streaks, fp)
	d.trips++
	return true
}

// Streak returns a fingerprint's current consecutive-degradation count
// (0 when healthy, unknown, or just tripped — a trip resets the streak).
func (d *Detector) Streak(fp uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.streaks[fp]
}

// Trips returns how many times drift has tripped since construction
// (Reset does not clear it).
func (d *Detector) Trips() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trips
}

// WorstRatio returns the highest finite ratio observed since the last Reset
// (NaN when none has been).
func (d *Detector) WorstRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.worst
}

// Reset clears every streak and the worst-ratio watermark — the drift
// re-entry step paired with Store.FlushLearned.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	clear(d.streaks)
	d.worst = math.NaN()
}
