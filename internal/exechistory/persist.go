package exechistory

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Warm-start persistence: Save serializes every fingerprint's latency
// windows with gob and Load replays them into a store in a fresh process, so
// a restarted system's latency guard and drift detector resume with the
// baselines the previous process observed instead of spending the first
// window of every fingerprint with no verdict.

// savedStoreVersion is the wire-format version of a persisted store.
const savedStoreVersion = 1

// savedRing is one latency window in chronological order (oldest first).
type savedRing struct {
	Vals []float64
	Vers []uint64
}

// savedEntry is one fingerprint's persisted history.
type savedEntry struct {
	Fingerprint     uint64
	Learned, Expert savedRing
	SinceExpert     int
	LastSource      string
}

// savedStore is the gob wire form of a store dump.
type savedStore struct {
	Version int
	// Tag identifies the system configuration (database seed, scale, oracle
	// seed — the same fingerprint the plan cache dumps carry) the latencies
	// were observed under; Load refuses a dump whose tag differs. Latencies
	// from a differently scaled or seeded system would seed the guard with
	// baselines from the wrong world.
	Tag uint64
	// Entries are the tracked fingerprints, least recently recorded first,
	// so replaying in order rebuilds the same recency order.
	Entries []savedEntry
}

// chronological flattens a ring oldest-first.
func (r *ring) chronological() savedRing {
	n := r.n()
	out := savedRing{Vals: make([]float64, 0, n), Vers: make([]uint64, 0, n)}
	start := 0
	if r.full {
		start = r.next
	}
	for i := 0; i < n; i++ {
		j := (start + i) % len(r.vals)
		out.Vals = append(out.Vals, r.vals[j])
		out.Vers = append(out.Vers, r.vers[j])
	}
	return out
}

// Save writes the store's tracked fingerprints to w, least recently recorded
// first, so a subsequent Load rebuilds the same recency (and therefore
// eviction) order. tag identifies the system configuration the latencies
// were observed under; Load checks it. The store stays live during the dump.
func (s *Store) Save(w io.Writer, tag uint64) error {
	if s == nil {
		return fmt.Errorf("exechistory: Save on a nil store")
	}
	s.mu.Lock()
	dump := savedStore{Version: savedStoreVersion, Tag: tag}
	for el := s.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		dump.Entries = append(dump.Entries, savedEntry{
			Fingerprint: e.fp,
			Learned:     e.learned.chronological(),
			Expert:      e.expert.chronological(),
			SinceExpert: e.sinceExpert,
			LastSource:  e.lastSource,
		})
	}
	s.mu.Unlock()
	return gob.NewEncoder(w).Encode(dump)
}

// Load replays a dump written by Save into the store and returns how many
// latency records it restored. tag must match the dump's: a mismatch errors
// without loading anything. Samples replay through the normal recording
// path, so the receiving store's bounds apply — a smaller Window keeps only
// each fingerprint's newest samples, and MaxFingerprints evicts the least
// recently recorded dumped fingerprints, exactly as live traffic would.
// Loading into a non-empty store merges.
func (s *Store) Load(r io.Reader, tag uint64) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("exechistory: Load on a nil store")
	}
	var dump savedStore
	if err := gob.NewDecoder(r).Decode(&dump); err != nil {
		return 0, err
	}
	if dump.Version != savedStoreVersion {
		return 0, fmt.Errorf("exechistory: unsupported history dump version %d", dump.Version)
	}
	if dump.Tag != tag {
		return 0, fmt.Errorf("exechistory: dump was produced by a different system configuration (tag %#x, want %#x)", dump.Tag, tag)
	}
	restored := 0
	for _, se := range dump.Entries {
		for i, v := range se.Learned.Vals {
			if s.Record(se.Fingerprint, Record{Kind: Learned, LatencyMs: v, PolicyVersion: se.Learned.Vers[i]}) {
				restored++
			}
		}
		for i, v := range se.Expert.Vals {
			if s.Record(se.Fingerprint, Record{Kind: Expert, LatencyMs: v, PolicyVersion: se.Expert.Vers[i]}) {
				restored++
			}
		}
		// Replaying learned-then-expert would zero the probe clock and lose
		// the remembered serving source; restore both directly.
		s.mu.Lock()
		if e, ok := s.m[se.Fingerprint]; ok {
			e.sinceExpert = se.SinceExpert
			if se.LastSource != "" {
				e.lastSource = se.LastSource
			}
		}
		s.mu.Unlock()
	}
	return restored, nil
}
