package catalog

import "testing"

func demo(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	for _, tbl := range []*Table{
		{Name: "title", Rows: 100, Columns: []Column{{Name: "id", Min: 0, Max: 99}, {Name: "kind_id", Min: 0, Max: 6}},
			Indexes: []Index{{Column: "id", Kind: BTree}}},
		{Name: "kind_type", Rows: 7, Columns: []Column{{Name: "id", Min: 0, Max: 6}}},
		{Name: "cast_info", Rows: 500, Columns: []Column{{Name: "id"}, {Name: "movie_id", Min: 0, Max: 99}}},
	} {
		if err := c.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	for _, fk := range []FK{
		{FromTable: "title", FromColumn: "kind_id", ToTable: "kind_type", ToColumn: "id"},
		{FromTable: "cast_info", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
	} {
		if err := c.AddFK(fk); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDuplicateTableRejected(t *testing.T) {
	c := demo(t)
	if err := c.AddTable(&Table{Name: "title"}); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestFKValidation(t *testing.T) {
	c := demo(t)
	bad := []FK{
		{FromTable: "nope", FromColumn: "id", ToTable: "title", ToColumn: "id"},
		{FromTable: "title", FromColumn: "id", ToTable: "nope", ToColumn: "id"},
		{FromTable: "title", FromColumn: "ghost", ToTable: "kind_type", ToColumn: "id"},
		{FromTable: "title", FromColumn: "id", ToTable: "kind_type", ToColumn: "ghost"},
	}
	for _, fk := range bad {
		if err := c.AddFK(fk); err == nil {
			t.Fatalf("invalid FK %+v accepted", fk)
		}
	}
}

func TestJoinableBothDirections(t *testing.T) {
	c := demo(t)
	if _, ok := c.Joinable("title", "kind_type"); !ok {
		t.Fatal("title–kind_type should be joinable")
	}
	if _, ok := c.Joinable("kind_type", "title"); !ok {
		t.Fatal("joinability must be symmetric")
	}
	if _, ok := c.Joinable("kind_type", "cast_info"); ok {
		t.Fatal("kind_type–cast_info should not be joinable")
	}
}

func TestNeighbors(t *testing.T) {
	c := demo(t)
	n := c.Neighbors("title")
	if len(n) != 2 || n[0] != "cast_info" || n[1] != "kind_type" {
		t.Fatalf("Neighbors(title) = %v, want [cast_info kind_type]", n)
	}
	if got := c.Neighbors("kind_type"); len(got) != 1 || got[0] != "title" {
		t.Fatalf("Neighbors(kind_type) = %v", got)
	}
}

func TestTableLookup(t *testing.T) {
	c := demo(t)
	tbl, err := c.Table("title")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows != 100 {
		t.Fatalf("rows = %d, want 100", tbl.Rows)
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Fatal("expected error for unknown table")
	}
	col, err := tbl.Column("kind_id")
	if err != nil {
		t.Fatal(err)
	}
	if col.Max != 6 {
		t.Fatalf("kind_id max = %d, want 6", col.Max)
	}
	if _, err := tbl.Column("ghost"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestIndexOn(t *testing.T) {
	c := demo(t)
	tbl := c.MustTable("title")
	ix, ok := tbl.IndexOn("id")
	if !ok || ix.Kind != BTree {
		t.Fatalf("IndexOn(id) = %+v, %v", ix, ok)
	}
	if _, ok := tbl.IndexOn("kind_id"); ok {
		t.Fatal("kind_id should have no index")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := demo(t)
	names := c.TableNames()
	want := []string{"cast_info", "kind_type", "title"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestIndexKindString(t *testing.T) {
	if NoIndex.String() != "none" || BTree.String() != "btree" || Hash.String() != "hash" {
		t.Fatal("IndexKind String() mismatch")
	}
}
