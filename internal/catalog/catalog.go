// Package catalog models database schemas: tables, integer-typed columns,
// indexes, row counts, and the foreign-key join graph. It is the shared
// vocabulary between the data generator, the statistics subsystem, the cost
// model, the traditional optimizer, and the learned agents.
//
// All columns are int64-valued. The reproduction's workloads (JOB-like star
// joins with selection predicates) only require ordered, hashable scalar
// domains, and a single column type keeps the executor and statistics exact.
package catalog

import (
	"fmt"
	"sort"
)

// IndexKind enumerates the access structures a column may carry.
type IndexKind int

const (
	// NoIndex means only sequential scans can read the column.
	NoIndex IndexKind = iota
	// BTree supports range and equality lookups (ordered).
	BTree
	// Hash supports equality lookups only.
	Hash
)

// String returns the lowercase name of the index kind.
func (k IndexKind) String() string {
	switch k {
	case BTree:
		return "btree"
	case Hash:
		return "hash"
	default:
		return "none"
	}
}

// Column is a named integer column with its domain bounds.
type Column struct {
	Name string
	// Min and Max bound the values stored in the column.
	Min, Max int64
}

// Index is an access structure over a single column.
type Index struct {
	Column string
	Kind   IndexKind
}

// Table describes one relation.
type Table struct {
	Name    string
	Rows    int64
	Columns []Column
	Indexes []Index
}

// Column returns the named column, or an error naming the table.
func (t *Table) Column(name string) (*Column, error) {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i], nil
		}
	}
	return nil, fmt.Errorf("catalog: table %s has no column %s", t.Name, name)
}

// HasColumn reports whether the table contains the named column.
func (t *Table) HasColumn(name string) bool {
	_, err := t.Column(name)
	return err == nil
}

// IndexOn returns the index on the named column, if any.
func (t *Table) IndexOn(column string) (Index, bool) {
	for _, ix := range t.Indexes {
		if ix.Column == column {
			return ix, true
		}
	}
	return Index{}, false
}

// FK is a foreign-key edge in the schema's join graph: FromTable.FromColumn
// references ToTable.ToColumn (the primary key).
type FK struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// Catalog is a complete schema: tables plus the FK join graph.
type Catalog struct {
	tables map[string]*Table
	names  []string
	FKs    []FK
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table. Adding a duplicate name is an error.
func (c *Catalog) AddTable(t *Table) error {
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: duplicate table %s", t.Name)
	}
	c.tables[t.Name] = t
	c.names = append(c.names, t.Name)
	sort.Strings(c.names)
	return nil
}

// AddFK registers a foreign-key edge. Both endpoints must exist.
func (c *Catalog) AddFK(fk FK) error {
	ft, ok := c.tables[fk.FromTable]
	if !ok {
		return fmt.Errorf("catalog: FK from unknown table %s", fk.FromTable)
	}
	tt, ok := c.tables[fk.ToTable]
	if !ok {
		return fmt.Errorf("catalog: FK to unknown table %s", fk.ToTable)
	}
	if !ft.HasColumn(fk.FromColumn) {
		return fmt.Errorf("catalog: FK from unknown column %s.%s", fk.FromTable, fk.FromColumn)
	}
	if !tt.HasColumn(fk.ToColumn) {
		return fmt.Errorf("catalog: FK to unknown column %s.%s", fk.ToTable, fk.ToColumn)
	}
	c.FKs = append(c.FKs, fk)
	return nil
}

// Table returns the named table, or an error.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %s", name)
	}
	return t, nil
}

// MustTable returns the named table and panics if absent. For use in code
// paths where the name was already validated.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames returns all table names in sorted order.
func (c *Catalog) TableNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// NumTables reports how many tables are registered.
func (c *Catalog) NumTables() int { return len(c.names) }

// Joinable reports whether an FK edge connects the two tables (in either
// direction) and returns the connecting edge.
func (c *Catalog) Joinable(a, b string) (FK, bool) {
	for _, fk := range c.FKs {
		if (fk.FromTable == a && fk.ToTable == b) || (fk.FromTable == b && fk.ToTable == a) {
			return fk, true
		}
	}
	return FK{}, false
}

// Neighbors returns the names of all tables connected to t by an FK edge.
func (c *Catalog) Neighbors(t string) []string {
	seen := map[string]bool{}
	var out []string
	for _, fk := range c.FKs {
		var other string
		switch t {
		case fk.FromTable:
			other = fk.ToTable
		case fk.ToTable:
			other = fk.FromTable
		default:
			continue
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	sort.Strings(out)
	return out
}
