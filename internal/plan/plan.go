// Package plan defines physical execution plans: scans with access paths,
// binary join trees with join algorithms, and aggregation operators. Plans
// are produced by the traditional optimizer and by the learned agents, and
// consumed by the cost model, the latency model, and the executor.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"handsfree/internal/query"
)

// sigCache memoizes a node's Signature. Plan nodes are immutable once built
// (the optimizer, the learned agents, and the cache all construct-then-share),
// so the canonical string is computed at most once per node; the atomic
// pointer makes the memo safe on plans shared across concurrent planners,
// and gob persistence skips it (unexported). Signature is on every serving
// hot path — fingerprint matching, fault matching, featurization — where the
// repeated recursive fmt.Sprintf otherwise dominates allocation.
type sigCache struct {
	p atomic.Pointer[string]
}

func (c *sigCache) get(compute func() string) string {
	if s := c.p.Load(); s != nil {
		return *s
	}
	s := compute()
	c.p.Store(&s)
	return s
}

// AccessPath enumerates how a scan reads its relation.
type AccessPath int

const (
	// SeqScan reads every row.
	SeqScan AccessPath = iota
	// IndexScan reads via a B-tree index (range or equality).
	IndexScan
	// HashIndexScan reads via a hash index (equality only).
	HashIndexScan
)

// String names the access path as it appears in EXPLAIN output.
func (a AccessPath) String() string {
	switch a {
	case IndexScan:
		return "IndexScan"
	case HashIndexScan:
		return "HashIndexScan"
	default:
		return "SeqScan"
	}
}

// JoinAlgo enumerates join algorithms.
type JoinAlgo int

const (
	// NestLoop is a (possibly index-assisted) nested-loop join.
	NestLoop JoinAlgo = iota
	// HashJoin builds a hash table on the right (inner) input.
	HashJoin
	// MergeJoin sorts both inputs and merges.
	MergeJoin
)

// String names the join algorithm.
func (j JoinAlgo) String() string {
	switch j {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	default:
		return "NestLoop"
	}
}

// JoinAlgos lists every join algorithm (the action sub-space for operator
// selection).
var JoinAlgos = []JoinAlgo{NestLoop, HashJoin, MergeJoin}

// AggAlgo enumerates aggregation algorithms.
type AggAlgo int

const (
	// HashAgg groups through a hash table.
	HashAgg AggAlgo = iota
	// SortAgg sorts then groups adjacent rows.
	SortAgg
)

// String names the aggregation algorithm.
func (a AggAlgo) String() string {
	if a == SortAgg {
		return "SortAgg"
	}
	return "HashAgg"
}

// AggAlgos lists every aggregation algorithm.
var AggAlgos = []AggAlgo{HashAgg, SortAgg}

// Node is a physical plan operator.
type Node interface {
	// Aliases returns the set of relation aliases produced by this subtree.
	Aliases() map[string]bool
	// Children returns the operator's inputs.
	Children() []Node
	// Signature returns a canonical string unique to the physical subtree.
	Signature() string
}

// Scan is a leaf: one relation read through an access path, with all
// single-relation filters applied.
type Scan struct {
	Alias, Table string
	Access       AccessPath
	// IndexColumn is the column the index is on (when Access != SeqScan).
	IndexColumn string
	// Filters are the pushed-down predicates on this relation.
	Filters []query.Filter

	sig sigCache
}

// Aliases returns the single-alias set for the scan.
func (s *Scan) Aliases() map[string]bool { return map[string]bool{s.Alias: true} }

// Children returns nil; scans are leaves.
func (s *Scan) Children() []Node { return nil }

// Signature returns a canonical encoding of the scan (memoized).
func (s *Scan) Signature() string {
	return s.sig.get(func() string {
		parts := make([]string, 0, len(s.Filters))
		for _, f := range s.Filters {
			parts = append(parts, f.String())
		}
		sort.Strings(parts)
		return fmt.Sprintf("%s(%s/%s ix=%s [%s])", s.Access, s.Table, s.Alias, s.IndexColumn, strings.Join(parts, ","))
	})
}

// Join is an inner equality join of two subtrees.
type Join struct {
	Algo        JoinAlgo
	Left, Right Node
	// Preds are the equality predicates applied at this join. Empty means a
	// cross product.
	Preds []query.Join

	sig sigCache
}

// Aliases returns the union of both inputs' alias sets.
func (j *Join) Aliases() map[string]bool {
	out := map[string]bool{}
	for a := range j.Left.Aliases() {
		out[a] = true
	}
	for a := range j.Right.Aliases() {
		out[a] = true
	}
	return out
}

// Children returns the left and right inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Signature returns a canonical encoding of the join subtree (memoized).
func (j *Join) Signature() string {
	return j.sig.get(func() string {
		preds := make([]string, 0, len(j.Preds))
		for _, p := range j.Preds {
			preds = append(preds, p.String())
		}
		sort.Strings(preds)
		return fmt.Sprintf("%s(%s, %s on %s)", j.Algo, j.Left.Signature(), j.Right.Signature(), strings.Join(preds, ","))
	})
}

// Agg applies grouped aggregation on top of a subtree.
type Agg struct {
	Algo       AggAlgo
	Child      Node
	GroupBys   []query.GroupBy
	Aggregates []query.Aggregate

	sig sigCache
}

// Aliases returns the child's alias set.
func (a *Agg) Aliases() map[string]bool { return a.Child.Aliases() }

// Children returns the single input.
func (a *Agg) Children() []Node { return []Node{a.Child} }

// Signature returns a canonical encoding of the aggregation (memoized).
func (a *Agg) Signature() string {
	return a.sig.get(func() string {
		return fmt.Sprintf("%s(%s groups=%d)", a.Algo, a.Child.Signature(), len(a.GroupBys))
	})
}

// CrossProduct reports whether the subtree contains any join with no
// predicates (a cartesian product).
func CrossProduct(n Node) bool {
	if j, ok := n.(*Join); ok {
		if len(j.Preds) == 0 {
			return true
		}
	}
	for _, c := range n.Children() {
		if CrossProduct(c) {
			return true
		}
	}
	return false
}

// NumJoins counts the join operators in the subtree.
func NumJoins(n Node) int {
	total := 0
	if _, ok := n.(*Join); ok {
		total = 1
	}
	for _, c := range n.Children() {
		total += NumJoins(c)
	}
	return total
}

// Leaves returns all scans in the subtree, left to right.
func Leaves(n Node) []*Scan {
	if s, ok := n.(*Scan); ok {
		return []*Scan{s}
	}
	var out []*Scan
	for _, c := range n.Children() {
		out = append(out, Leaves(c)...)
	}
	return out
}

// Walk visits every node of the subtree in depth-first pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// Format renders the plan tree with indentation (EXPLAIN-style).
func Format(n Node) string {
	var b strings.Builder
	format(n, 0, &b)
	return b.String()
}

func format(n Node, depth int, b *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	switch n := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "%s%s on %s", indent, n.Access, n.Table)
		if n.Alias != n.Table {
			fmt.Fprintf(b, " AS %s", n.Alias)
		}
		if n.Access != SeqScan {
			fmt.Fprintf(b, " (index on %s)", n.IndexColumn)
		}
		for _, f := range n.Filters {
			fmt.Fprintf(b, " [%s]", f)
		}
		b.WriteByte('\n')
	case *Join:
		fmt.Fprintf(b, "%s%s", indent, n.Algo)
		if len(n.Preds) == 0 {
			b.WriteString(" (CROSS)")
		}
		for _, p := range n.Preds {
			fmt.Fprintf(b, " [%s]", p)
		}
		b.WriteByte('\n')
		format(n.Left, depth+1, b)
		format(n.Right, depth+1, b)
	case *Agg:
		fmt.Fprintf(b, "%s%s (%d groups cols, %d aggs)\n", indent, n.Algo, len(n.GroupBys), len(n.Aggregates))
		format(n.Child, depth+1, b)
	}
}

// BuildScan constructs the scan leaf for one relation of a query with its
// pushed-down filters and the chosen access path.
func BuildScan(q *query.Query, alias string, access AccessPath, indexColumn string) *Scan {
	rel, _ := q.RelationByAlias(alias)
	return &Scan{
		Alias:       alias,
		Table:       rel.Table,
		Access:      access,
		IndexColumn: indexColumn,
		Filters:     q.FiltersOn(alias),
	}
}

// JoinNodes combines two subtrees with the given algorithm, attaching every
// join predicate of q that spans them.
func JoinNodes(q *query.Query, algo JoinAlgo, left, right Node) *Join {
	return &Join{
		Algo:  algo,
		Left:  left,
		Right: right,
		Preds: q.JoinsBetween(left.Aliases(), right.Aliases()),
	}
}

// FinishAgg wraps root in the query's aggregation, if it has one.
func FinishAgg(q *query.Query, algo AggAlgo, root Node) Node {
	if len(q.Aggregates) == 0 && len(q.GroupBys) == 0 {
		return root
	}
	return &Agg{Algo: algo, Child: root, GroupBys: q.GroupBys, Aggregates: q.Aggregates}
}
