package plan

import (
	"strings"
	"testing"

	"handsfree/internal/query"
)

func demoQuery() *query.Query {
	return &query.Query{
		Relations: []query.Relation{
			{Table: "title", Alias: "t"},
			{Table: "movie_companies", Alias: "mc"},
			{Table: "company_name", Alias: "cn"},
		},
		Joins: []query.Join{
			{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []query.Filter{
			{Alias: "t", Column: "production_year", Op: query.Gt, Value: 100},
		},
		Aggregates: []query.Aggregate{{Kind: query.AggCount}},
	}
}

func leftDeep(q *query.Query, algo JoinAlgo, order ...string) Node {
	var root Node = BuildScan(q, order[0], SeqScan, "")
	for _, a := range order[1:] {
		root = JoinNodes(q, algo, root, BuildScan(q, a, SeqScan, ""))
	}
	return root
}

func TestScanCarriesFilters(t *testing.T) {
	q := demoQuery()
	s := BuildScan(q, "t", SeqScan, "")
	if len(s.Filters) != 1 || s.Filters[0].Column != "production_year" {
		t.Fatalf("scan filters = %v", s.Filters)
	}
	if s.Table != "title" {
		t.Fatalf("scan table = %q", s.Table)
	}
}

func TestJoinNodesAttachesSpanningPreds(t *testing.T) {
	q := demoQuery()
	j := JoinNodes(q, HashJoin, BuildScan(q, "mc", SeqScan, ""), BuildScan(q, "t", SeqScan, ""))
	if len(j.Preds) != 1 || j.Preds[0].LeftCol != "movie_id" {
		t.Fatalf("join preds = %v", j.Preds)
	}
	// Joining the result with cn picks up the mc–cn predicate.
	j2 := JoinNodes(q, HashJoin, j, BuildScan(q, "cn", SeqScan, ""))
	if len(j2.Preds) != 1 || j2.Preds[0].LeftCol != "company_id" {
		t.Fatalf("second join preds = %v", j2.Preds)
	}
}

func TestCrossProductDetection(t *testing.T) {
	q := demoQuery()
	good := leftDeep(q, HashJoin, "t", "mc", "cn")
	if CrossProduct(good) {
		t.Fatal("t–mc–cn left-deep plan should have no cross product")
	}
	// t joined directly with cn has no predicate.
	bad := JoinNodes(q, HashJoin, BuildScan(q, "t", SeqScan, ""), BuildScan(q, "cn", SeqScan, ""))
	if !CrossProduct(bad) {
		t.Fatal("t–cn join should be a cross product")
	}
}

func TestAliasesUnion(t *testing.T) {
	q := demoQuery()
	root := leftDeep(q, NestLoop, "t", "mc", "cn")
	al := root.Aliases()
	if len(al) != 3 || !al["t"] || !al["mc"] || !al["cn"] {
		t.Fatalf("aliases = %v", al)
	}
}

func TestNumJoinsAndLeaves(t *testing.T) {
	q := demoQuery()
	root := leftDeep(q, MergeJoin, "t", "mc", "cn")
	if NumJoins(root) != 2 {
		t.Fatalf("NumJoins = %d, want 2", NumJoins(root))
	}
	ls := Leaves(root)
	if len(ls) != 3 || ls[0].Alias != "t" || ls[2].Alias != "cn" {
		t.Fatalf("leaves = %v", ls)
	}
}

func TestSignatureDistinguishesPhysical(t *testing.T) {
	q := demoQuery()
	a := leftDeep(q, HashJoin, "t", "mc", "cn")
	b := leftDeep(q, NestLoop, "t", "mc", "cn")
	c := leftDeep(q, HashJoin, "mc", "t", "cn")
	if a.Signature() == b.Signature() {
		t.Fatal("different join algorithms share a signature")
	}
	if a.Signature() == c.Signature() {
		t.Fatal("different join orders share a signature")
	}
	if a.Signature() != leftDeep(q, HashJoin, "t", "mc", "cn").Signature() {
		t.Fatal("identical plans have different signatures")
	}
}

func TestFinishAgg(t *testing.T) {
	q := demoQuery()
	root := FinishAgg(q, HashAgg, leftDeep(q, HashJoin, "t", "mc", "cn"))
	agg, ok := root.(*Agg)
	if !ok {
		t.Fatalf("FinishAgg returned %T, want *Agg", root)
	}
	if len(agg.Aggregates) != 1 {
		t.Fatalf("agg count = %d", len(agg.Aggregates))
	}
	// Query without aggregates is returned unchanged.
	q2 := demoQuery()
	q2.Aggregates = nil
	child := leftDeep(q2, HashJoin, "t", "mc", "cn")
	if FinishAgg(q2, HashAgg, child) != child {
		t.Fatal("FinishAgg wrapped a query without aggregation")
	}
}

func TestFormatReadable(t *testing.T) {
	q := demoQuery()
	root := FinishAgg(q, SortAgg, leftDeep(q, HashJoin, "t", "mc", "cn"))
	out := Format(root)
	for _, want := range []string{"SortAgg", "HashJoin", "SeqScan on title", "mc.movie_id = t.id"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	q := demoQuery()
	root := FinishAgg(q, HashAgg, leftDeep(q, HashJoin, "t", "mc", "cn"))
	count := 0
	Walk(root, func(Node) { count++ })
	// Agg + 2 joins + 3 scans.
	if count != 6 {
		t.Fatalf("Walk visited %d nodes, want 6", count)
	}
}
