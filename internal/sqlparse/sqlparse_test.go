package sqlparse

import (
	"testing"

	"handsfree/internal/datagen"
	"handsfree/internal/query"
	"handsfree/internal/workload"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM title AS t, movie_companies mc WHERE mc.movie_id = t.id AND t.production_year > 80;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 2 || q.Relations[0].Alias != "t" || q.Relations[1].Alias != "mc" {
		t.Fatalf("relations = %v", q.Relations)
	}
	if len(q.Joins) != 1 || q.Joins[0].LeftAlias != "mc" || q.Joins[0].RightCol != "id" {
		t.Fatalf("joins = %v", q.Joins)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != query.Gt || q.Filters[0].Value != 80 {
		t.Fatalf("filters = %v", q.Filters)
	}
	if len(q.Aggregates) != 1 || q.Aggregates[0].Kind != query.AggCount {
		t.Fatalf("aggregates = %v", q.Aggregates)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * FROM title")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 0 {
		t.Fatal("SELECT * should have no aggregates")
	}
	if q.Relations[0].Alias != "title" {
		t.Fatalf("default alias = %q, want table name", q.Relations[0].Alias)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	q, err := Parse("SELECT cn.country_code, MIN(t.production_year), MAX(t.season_nr) FROM title t, company_name cn WHERE t.id = cn.id GROUP BY cn.country_code")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 2 || q.Aggregates[0].Kind != query.AggMin || q.Aggregates[1].Kind != query.AggMax {
		t.Fatalf("aggregates = %v", q.Aggregates)
	}
	if len(q.GroupBys) != 1 || q.GroupBys[0].Column != "country_code" {
		t.Fatalf("group bys = %v", q.GroupBys)
	}
}

func TestParseAllOperators(t *testing.T) {
	q, err := Parse("SELECT * FROM a WHERE a.x = 1 AND a.y < 2 AND a.z <= 3 AND a.u > 4 AND a.v >= 5 AND a.w <> 6")
	if err != nil {
		t.Fatal(err)
	}
	want := []query.CmpOp{query.Eq, query.Lt, query.Le, query.Gt, query.Ge, query.Ne}
	if len(q.Filters) != len(want) {
		t.Fatalf("got %d filters", len(q.Filters))
	}
	for i, f := range q.Filters {
		if f.Op != want[i] {
			t.Fatalf("filter %d op %v, want %v", i, f.Op, want[i])
		}
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse("SELECT * FROM a WHERE a.x > -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Value != -5 {
		t.Fatalf("value = %d, want -5", q.Filters[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FROM a",
		"SELECT * FROM",
		"SELECT * FROM a WHERE",
		"SELECT * FROM a WHERE a.x",
		"SELECT * FROM a WHERE a.x ~ 3",
		"SELECT * FROM a WHERE a.x < b.y",  // joins must use =
		"SELECT * FROM a WHERE b.x = 1",    // undeclared alias
		"SELECT MIN(*) FROM a",             // only COUNT(*) allowed
		"SELECT * FROM a GROUP BY",         // missing column
		"SELECT * FROM a; SELECT * FROM b", // trailing input
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted invalid SQL %q", sql)
		}
	}
}

// TestRoundTripWorkload parses the SQL rendered by every named workload
// query and checks logical equivalence via the canonical key.
func TestRoundTripWorkload(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.New(db)
	for _, name := range workload.NamedNames() {
		orig := w.MustNamed(name)
		parsed, err := Parse(orig.SQL())
		if err != nil {
			t.Fatalf("%s: %v\nSQL: %s", name, err, orig.SQL())
		}
		if parsed.Key() != orig.Key() {
			t.Fatalf("%s: round trip changed the query:\n%s\n%s", name, orig.Key(), parsed.Key())
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select count(*) from title as t where t.id = 3 group by t.kind_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBys) != 1 || len(q.Aggregates) != 1 {
		t.Fatal("lowercase keywords not handled")
	}
}
