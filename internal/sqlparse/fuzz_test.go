package sqlparse

import (
	"testing"
)

// FuzzParse drives the SQL front end with arbitrary input. Two properties:
//
//  1. Parse never panics — it either returns a query or an error, on any
//     byte sequence.
//  2. Parse → render → parse round-trips: any query the parser accepts
//     renders (query.Query.SQL) to text the parser accepts again, the
//     re-parse renders to the identical text (rendering is a fixed point),
//     and both parses agree on the logical content (query.Key).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM title",
		"SELECT COUNT(*) FROM title AS t, movie_companies mc WHERE mc.movie_id = t.id",
		"SELECT COUNT(*), MIN(t.production_year) FROM title t WHERE t.production_year > 80;",
		"SELECT MAX(t.id) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.kind_id <= 3 GROUP BY t.kind_id",
		"SELECT SUM(a.x) FROM b a WHERE a.x <> -5 AND a.x >= 0 GROUP BY a.y, a.z",
		"SELECT * FROM t WHERE t.a = 1 AND t.b < 2 AND t.c = t.d",
		"select min(x.y) from tab as x group by x.y",
		"SELECT * FROM",
		"SELECT COUNT( FROM t",
		"\x00\xff(((",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		rendered := q.SQL()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered SQL failed: %v\ninput:    %q\nrendered: %q", err, sql, rendered)
		}
		if again := q2.SQL(); again != rendered {
			t.Fatalf("rendering is not a fixed point:\nfirst:  %q\nsecond: %q", rendered, again)
		}
		if q.Key() != q2.Key() {
			t.Fatalf("round-trip changed logical content:\nbefore: %q\nafter:  %q", q.Key(), q2.Key())
		}
	})
}
