// Package sqlparse parses the SQL dialect the workloads use into the query
// IR: SELECT with * or aggregates, FROM with aliases, WHERE with equality
// joins and integer comparison filters, and GROUP BY.
//
//	SELECT COUNT(*), MIN(t.production_year)
//	FROM title AS t, movie_companies mc
//	WHERE mc.movie_id = t.id AND t.production_year > 80
//	GROUP BY mc.company_type_id;
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"handsfree/internal/query"
)

// Parse converts SQL text into a validated query.
func Parse(sql string) (*query.Query, error) {
	p := &parser{toks: lex(sql)}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , ; . * = < > <= >= <>
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case c == '<' || c == '>':
			if i+1 < len(s) && (s[i+1] == '=' || (c == '<' && s[i+1] == '>')) {
				toks = append(toks, token{tokSymbol, s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, string(c)})
				i++
			}
		case strings.ContainsRune("(),;.*=", rune(c)):
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		default:
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		}
	}
	return append(toks, token{tokEOF, ""})
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) kw(s string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sqlparse: expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlparse: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

var aggKinds = map[string]query.AggKind{
	"COUNT": query.AggCount,
	"MIN":   query.AggMin,
	"MAX":   query.AggMax,
	"SUM":   query.AggSum,
}

func (p *parser) parseSelect() (*query.Query, error) {
	q := &query.Query{}
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("sqlparse: query must start with SELECT")
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if !p.kw("FROM") {
		return nil, fmt.Errorf("sqlparse: expected FROM")
	}
	if err := p.parseFrom(q); err != nil {
		return nil, err
	}
	if p.kw("WHERE") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.kw("GROUP") {
		if !p.kw("BY") {
			return nil, fmt.Errorf("sqlparse: expected BY after GROUP")
		}
		if err := p.parseGroupBy(q); err != nil {
			return nil, err
		}
	}
	// Optional trailing semicolon.
	if t := p.peek(); t.kind == tokSymbol && t.text == ";" {
		p.pos++
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: unexpected trailing input %q", t.text)
	}
	return q, nil
}

func (p *parser) parseSelectList(q *query.Query) error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && t.text == "*":
			p.pos++
		case t.kind == tokIdent && aggKinds[strings.ToUpper(t.text)] != query.AggNone || strings.EqualFold(t.text, "COUNT"):
			kind := aggKinds[strings.ToUpper(t.text)]
			p.pos++
			if err := p.expectSym("("); err != nil {
				return err
			}
			if inner := p.peek(); inner.kind == tokSymbol && inner.text == "*" {
				if kind != query.AggCount {
					return fmt.Errorf("sqlparse: only COUNT may aggregate *")
				}
				p.pos++
				q.Aggregates = append(q.Aggregates, query.Aggregate{Kind: query.AggCount})
			} else {
				alias, col, err := p.parseColumnRef()
				if err != nil {
					return err
				}
				q.Aggregates = append(q.Aggregates, query.Aggregate{Kind: kind, Alias: alias, Column: col})
			}
			if err := p.expectSym(")"); err != nil {
				return err
			}
		case t.kind == tokIdent:
			// Bare grouped column in the select list: alias.col.
			alias, col, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			// Recorded implicitly; GROUP BY declares the grouping columns.
			_ = alias
			_ = col
		default:
			return fmt.Errorf("sqlparse: unexpected select item %q", t.text)
		}
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

func (p *parser) parseColumnRef() (alias, col string, err error) {
	alias, err = p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if err := p.expectSym("."); err != nil {
		return "", "", err
	}
	col, err = p.expectIdent()
	return alias, col, err
}

func (p *parser) parseFrom(q *query.Query) error {
	for {
		table, err := p.expectIdent()
		if err != nil {
			return err
		}
		alias := table
		if p.kw("AS") {
			alias, err = p.expectIdent()
			if err != nil {
				return err
			}
		} else if t := p.peek(); t.kind == tokIdent && !isKeyword(t.text) {
			alias = p.next().text
		}
		q.Relations = append(q.Relations, query.Relation{Table: table, Alias: alias})
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "GROUP", "BY", "AND", "AS", "FROM", "SELECT":
		return true
	}
	return false
}

var cmpOps = map[string]query.CmpOp{
	"=": query.Eq, "<": query.Lt, "<=": query.Le,
	">": query.Gt, ">=": query.Ge, "<>": query.Ne,
}

func (p *parser) parseWhere(q *query.Query) error {
	for {
		alias, col, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		opTok := p.next()
		op, ok := cmpOps[opTok.text]
		if opTok.kind != tokSymbol || !ok {
			return fmt.Errorf("sqlparse: unexpected operator %q", opTok.text)
		}
		rhs := p.peek()
		switch {
		case rhs.kind == tokNumber:
			p.pos++
			v, err := strconv.ParseInt(rhs.text, 10, 64)
			if err != nil {
				return fmt.Errorf("sqlparse: bad number %q", rhs.text)
			}
			q.Filters = append(q.Filters, query.Filter{Alias: alias, Column: col, Op: op, Value: v})
		case rhs.kind == tokIdent:
			if op != query.Eq {
				return fmt.Errorf("sqlparse: join predicates must use =")
			}
			ralias, rcol, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			q.Joins = append(q.Joins, query.Join{LeftAlias: alias, LeftCol: col, RightAlias: ralias, RightCol: rcol})
		default:
			return fmt.Errorf("sqlparse: unexpected predicate right-hand side %q", rhs.text)
		}
		if p.kw("AND") {
			continue
		}
		return nil
	}
}

func (p *parser) parseGroupBy(q *query.Query) error {
	for {
		alias, col, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		q.GroupBys = append(q.GroupBys, query.GroupBy{Alias: alias, Column: col})
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.pos++
			continue
		}
		return nil
	}
}
