package featurize

import (
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/catalog"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
)

func fixture(t *testing.T) (*Space, *query.Query) {
	t.Helper()
	cat := catalog.New()
	_ = cat.AddTable(&catalog.Table{Name: "a", Rows: 100, Columns: []catalog.Column{{Name: "id"}, {Name: "x"}}})
	_ = cat.AddTable(&catalog.Table{Name: "b", Rows: 100, Columns: []catalog.Column{{Name: "id"}, {Name: "a_id"}}})
	_ = cat.AddTable(&catalog.Table{Name: "c", Rows: 100, Columns: []catalog.Column{{Name: "id"}, {Name: "b_id"}}})
	st := stats.NewStats()
	rng := rand.New(rand.NewSource(1))
	mk := func() map[string][]int64 {
		ids := make([]int64, 100)
		xs := make([]int64, 100)
		for i := range ids {
			ids[i] = int64(i)
			xs[i] = rng.Int63n(10)
		}
		return map[string][]int64{"id": ids, "x": xs, "a_id": xs, "b_id": xs}
	}
	st.Analyze("a", mk(), 8, 2)
	st.Analyze("b", mk(), 8, 2)
	st.Analyze("c", mk(), 8, 2)
	est := stats.NewEstimator(cat, st)
	q := &query.Query{
		Relations: []query.Relation{
			{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}, {Table: "c", Alias: "c"},
		},
		Joins: []query.Join{
			{LeftAlias: "b", LeftCol: "a_id", RightAlias: "a", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "b_id", RightAlias: "b", RightCol: "id"},
		},
		Filters: []query.Filter{{Alias: "a", Column: "x", Op: query.Eq, Value: 3}},
	}
	return NewSpace(4, est), q
}

func initialForest(q *query.Query) []plan.Node {
	var f []plan.Node
	for _, a := range AliasIndex(q) {
		f = append(f, plan.BuildScan(q, a, plan.SeqScan, ""))
	}
	return f
}

func TestObsAndActionDims(t *testing.T) {
	s, _ := fixture(t)
	if s.ObsDim() != 2*16+8 {
		t.Fatalf("ObsDim = %d, want 40", s.ObsDim())
	}
	if s.ActionDim() != 16 {
		t.Fatalf("ActionDim = %d, want 16", s.ActionDim())
	}
}

func TestInitialStateSubtreeBlock(t *testing.T) {
	s, q := fixture(t)
	f := initialForest(q)
	v := s.JoinState(q, f)
	// Initially subtree i contains only relation i at depth 0 → weight 1.
	for i := 0; i < 3; i++ {
		if v[i*4+i] != 1 {
			t.Fatalf("subtree %d self-weight = %v, want 1", i, v[i*4+i])
		}
		for j := 0; j < 4; j++ {
			if j != i && v[i*4+j] != 0 {
				t.Fatalf("subtree %d has spurious weight at %d", i, j)
			}
		}
	}
	// Row 3 (no fourth subtree) must be all zeros.
	for j := 0; j < 4; j++ {
		if v[3*4+j] != 0 {
			t.Fatal("empty subtree row is nonzero")
		}
	}
}

func TestDepthWeighting(t *testing.T) {
	s, q := fixture(t)
	f := initialForest(q) // [a b c]
	// Join a (0) and b (1): forest becomes [c, (a⋈b)].
	joined := plan.JoinNodes(q, plan.NestLoop, f[0], f[1])
	forest := []plan.Node{f[2], joined}
	v := s.JoinState(q, forest)
	// Row 0 = c alone at weight 1 (c is alias index 2).
	if v[0*4+2] != 1 {
		t.Fatalf("row 0 c-weight = %v, want 1", v[0*4+2])
	}
	// Row 1 = a and b at depth 1 → weight 0.5 each.
	if v[1*4+0] != 0.5 || v[1*4+1] != 0.5 {
		t.Fatalf("row 1 = %v %v, want 0.5 0.5", v[1*4+0], v[1*4+1])
	}
}

func TestJoinGraphBlockSymmetric(t *testing.T) {
	s, q := fixture(t)
	v := s.JoinState(q, initialForest(q))
	off := 16
	// a(0)–b(1) and b(1)–c(2) joined; a–c not.
	if v[off+0*4+1] != 1 || v[off+1*4+0] != 1 {
		t.Fatal("a–b edge missing or asymmetric")
	}
	if v[off+1*4+2] != 1 || v[off+2*4+1] != 1 {
		t.Fatal("b–c edge missing or asymmetric")
	}
	if v[off+0*4+2] != 0 {
		t.Fatal("spurious a–c edge")
	}
}

func TestSelectivityBlock(t *testing.T) {
	s, q := fixture(t)
	v := s.JoinState(q, initialForest(q))
	off := 32
	// a has an equality filter on x (10 distinct values) → sel ≈ 0.1.
	if v[off+0] <= 0 || v[off+0] > 0.5 {
		t.Fatalf("selectivity(a) = %v, want ≈ 0.1", v[off+0])
	}
	// b and c are unfiltered → selectivity 1.
	if v[off+1] != 1 || v[off+2] != 1 {
		t.Fatalf("unfiltered selectivities = %v %v, want 1 1", v[off+1], v[off+2])
	}
}

func TestPairMask(t *testing.T) {
	s, _ := fixture(t)
	mask := s.PairMask(3)
	valid := 0
	for a, ok := range mask {
		if !ok {
			continue
		}
		valid++
		x, y := s.DecodeAction(a)
		if x == y || x >= 3 || y >= 3 {
			t.Fatalf("invalid action (%d,%d) unmasked", x, y)
		}
	}
	if valid != 6 {
		t.Fatalf("3 subtrees have %d valid ordered pairs, want 6", valid)
	}
}

func TestConnectedPairMask(t *testing.T) {
	s, q := fixture(t)
	f := initialForest(q) // alias order: a b c
	mask := s.ConnectedPairMask(q, f)
	// a(0)–c(2) is not joinable; a–b and b–c are.
	if mask[s.EncodeAction(0, 2)] || mask[s.EncodeAction(2, 0)] {
		t.Fatal("disconnected pair a–c not masked")
	}
	if !mask[s.EncodeAction(0, 1)] || !mask[s.EncodeAction(1, 2)] {
		t.Fatal("connected pairs masked out")
	}
}

func TestConnectedPairMaskFallback(t *testing.T) {
	s, q := fixture(t)
	// Remove all joins: every pair is disconnected, so the mask must fall
	// back to all pairs (episodes must be able to finish).
	q2 := *q
	q2.Joins = nil
	mask := s.ConnectedPairMask(&q2, initialForest(q))
	any := false
	for _, ok := range mask {
		any = any || ok
	}
	if !any {
		t.Fatal("fallback mask is empty")
	}
}

func TestActionCodec(t *testing.T) {
	s, _ := fixture(t)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			gx, gy := s.DecodeAction(s.EncodeAction(x, y))
			if gx != x || gy != y {
				t.Fatalf("codec mismatch: (%d,%d) → (%d,%d)", x, y, gx, gy)
			}
		}
	}
}

func TestCardinalityBlock(t *testing.T) {
	s, q := fixture(t)
	f := initialForest(q)
	v := s.JoinState(q, f)
	off := 2*16 + 4
	// Initial subtrees are single relations: nonzero log-cards, zero for the
	// absent fourth row.
	for i := 0; i < 3; i++ {
		if v[off+i] <= 0 {
			t.Fatalf("subtree %d cardinality feature = %v, want > 0", i, v[off+i])
		}
	}
	if v[off+3] != 0 {
		t.Fatal("absent subtree has nonzero cardinality feature")
	}
	// Joining two relations must change the joined row's cardinality.
	joined := plan.JoinNodes(q, plan.NestLoop, f[0], f[1])
	v2 := s.JoinState(q, []plan.Node{f[2], joined})
	if v2[off+1] == v[off+0] && v2[off+1] == v[off+1] {
		t.Fatal("joined subtree's cardinality feature did not change")
	}
}

func TestFeatureVectorFinite(t *testing.T) {
	s, q := fixture(t)
	v := s.JoinState(q, initialForest(q))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d is %v", i, x)
		}
	}
}
