// Package featurize converts optimizer states into the fixed-length vectors
// the paper's neural agents consume. The encoding follows ReJOIN (§3): each
// join subtree is a row vector weighting its relations by 1/2^depth, plus a
// join-graph adjacency block and a per-relation predicate-selectivity block.
//
// Featurization runs once per step of every training episode, so it is a hot
// path. Two mechanisms keep its steady-state allocation down to the feature
// vector itself (which episode trajectories retain and therefore must be
// fresh): PairMask memoizes the per-forest-size action masks on the Space
// (they are pure functions of the forest size), and Scratch carries the
// per-episode working maps — alias positions, depth weights, subtree alias
// sets — that the naive encoding would reallocate at every state.
package featurize

import (
	"math"
	"sort"
	"sync"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// Estimator is the slice of cardinality estimation featurization needs:
// the predicate-selectivity block and the per-subtree cardinality block.
// Both the exact histogram estimator (*stats.Estimator) and the
// sketch-backed one (*sketch.Estimator) satisfy it, so the same learned
// featurization runs on either statistics source.
type Estimator interface {
	BaseSelectivity(q *query.Query, alias string) float64
	SubsetCard(q *query.Query, aliases map[string]bool) float64
}

// Space is a fixed-size featurization context: it pins the maximum relation
// count so every query in a workload maps into vectors of identical length
// (the network input dimension). A Space is shared read-only by parallel
// collection workers; do not copy it after first use.
type Space struct {
	// MaxRels bounds the number of relations per query.
	MaxRels int
	// Est supplies filter selectivities for the predicate block.
	Est Estimator

	// maskOnce guards the lazily built PairMask cache: masks[k] is the
	// (immutable, shared) mask for a forest of k subtrees.
	maskOnce sync.Once
	masks    [][]bool
}

// NewSpace builds a featurization space.
func NewSpace(maxRels int, est Estimator) *Space {
	return &Space{MaxRels: maxRels, Est: est}
}

// ObsDim is the length of the state vectors: MaxRels² for subtree rows,
// MaxRels² for the join graph, MaxRels for per-relation selectivities, and
// MaxRels for per-subtree estimated cardinalities.
func (s *Space) ObsDim() int {
	return 2*s.MaxRels*s.MaxRels + 2*s.MaxRels
}

// ActionDim is the size of the join-pair action space: all ordered pairs.
func (s *Space) ActionDim() int {
	return s.MaxRels * s.MaxRels
}

// AliasIndex returns the query's aliases in sorted order; the position of an
// alias in this slice is its feature index.
func AliasIndex(q *query.Query) []string {
	out := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = r.Alias
	}
	sort.Strings(out)
	return out
}

// Scratch holds the reusable working state of featurization: the alias→index
// map and cached base selectivities of the current query, the depth-weight
// accumulator, and memos of subtree alias sets and cardinalities keyed by
// plan node. One Scratch belongs to one environment (it is not
// concurrency-safe); call Reset at each episode start so the per-node memos
// do not retain the previous episode's plan nodes. The zero value is ready
// to use.
type Scratch struct {
	q       *query.Query
	names   []string
	idx     map[string]int
	sels    []float64
	weights map[string]float64
	aliases map[plan.Node]map[string]bool
	cards   map[plan.Node]float64
}

// Reset drops per-episode state (the subtree alias-set and cardinality
// memos). The per-query alias index and selectivity cache survive: they are
// keyed by query pointer and revalidated on use.
func (sc *Scratch) Reset() {
	clear(sc.aliases)
	clear(sc.cards)
}

// prepare returns the alias→feature-index map for q, rebuilding it — and the
// base-selectivity cache aligned with it — only when the query changes. The
// selectivity block of the encoding is constant per query, so caching it here
// removes the per-state estimator walk (and its filter-slice allocations)
// from the rollout hot path.
func (sc *Scratch) prepare(q *query.Query, est Estimator) map[string]int {
	if sc.q == q && sc.idx != nil {
		return sc.idx
	}
	sc.names = sc.names[:0]
	for _, r := range q.Relations {
		sc.names = append(sc.names, r.Alias)
	}
	sort.Strings(sc.names)
	if sc.idx == nil {
		sc.idx = make(map[string]int, len(sc.names))
	} else {
		clear(sc.idx)
	}
	for i, a := range sc.names {
		sc.idx[a] = i
	}
	sc.sels = sc.sels[:0]
	for _, a := range sc.names {
		sc.sels = append(sc.sels, est.BaseSelectivity(q, a))
	}
	sc.q = q
	return sc.idx
}

// cardOf returns the estimated cardinality of a subtree, memoized per node.
// Nodes are immutable and the memo is cleared per episode, so within an
// episode only newly joined subtrees pay the estimator walk; re-encoding an
// unchanged forest (every state revisits all current roots) is lookup-only.
func (sc *Scratch) cardOf(q *query.Query, est Estimator, n plan.Node) float64 {
	if c, ok := sc.cards[n]; ok {
		return c
	}
	c := est.SubsetCard(q, sc.aliasesOf(n))
	if sc.cards == nil {
		sc.cards = make(map[plan.Node]float64, 16)
	}
	sc.cards[n] = c
	return c
}

// aliasesOf returns the alias set of a subtree, memoized per node. Join trees
// grow bottom-up during an episode, so the memo turns the naive recursive
// recomputation (one fresh map per interior node per state) into one map per
// node per episode, with joined nodes merged from their memoized children.
func (sc *Scratch) aliasesOf(n plan.Node) map[string]bool {
	if m, ok := sc.aliases[n]; ok {
		return m
	}
	var m map[string]bool
	switch t := n.(type) {
	case *plan.Join:
		l, r := sc.aliasesOf(t.Left), sc.aliasesOf(t.Right)
		m = make(map[string]bool, len(l)+len(r))
		for a := range l {
			m[a] = true
		}
		for a := range r {
			m[a] = true
		}
	default:
		m = n.Aliases()
	}
	if sc.aliases == nil {
		sc.aliases = make(map[plan.Node]map[string]bool, 16)
	}
	sc.aliases[n] = m
	return m
}

// JoinState encodes the current forest of join subtrees. The subtree block
// has one row per current subtree (in forest order); entry (row, i) is
// 1/2^depth of relation i within that subtree, 0 if absent. The join-graph
// and selectivity blocks are constant per query.
func (s *Space) JoinState(q *query.Query, forest []plan.Node) []float64 {
	return s.JoinStateInto(make([]float64, s.ObsDim()), q, forest, nil)
}

// JoinStateInto is JoinState writing into caller-owned storage: dst must have
// length ObsDim() and is fully overwritten. sc carries the reusable working
// maps; nil falls back to throwaway ones. The returned slice is dst. dst must
// still be freshly allocated per state when the result is retained (episode
// trajectories keep feature vectors until the policy update); what the
// scratch eliminates is every other allocation of the encoding.
func (s *Space) JoinStateInto(dst []float64, q *query.Query, forest []plan.Node, sc *Scratch) []float64 {
	if sc == nil {
		sc = &Scratch{}
	}
	n := s.MaxRels
	features := dst[:s.ObsDim()]
	for i := range features {
		features[i] = 0
	}
	idx := sc.prepare(q, s.Est)

	// Subtree block.
	if sc.weights == nil {
		sc.weights = make(map[string]float64, n)
	}
	for row, tree := range forest {
		if row >= n {
			break
		}
		clear(sc.weights)
		depthWeights(tree, 0, sc.weights)
		for alias, w := range sc.weights {
			if i, ok := idx[alias]; ok && i < n {
				features[row*n+i] = w
			}
		}
	}
	// Join-graph block.
	off := n * n
	for _, j := range q.Joins {
		a, aok := idx[j.LeftAlias]
		b, bok := idx[j.RightAlias]
		if aok && bok && a < n && b < n {
			features[off+a*n+b] = 1
			features[off+b*n+a] = 1
		}
	}
	// Selectivity block (constant per query; served from the scratch cache).
	off = 2 * n * n
	for i, sel := range sc.sels {
		if i < n {
			features[off+i] = sel
		}
	}
	// Cardinality block: log-scaled estimated output size of each current
	// subtree. Without it the policy cannot distinguish a tiny dimension
	// subtree from a fact-table blowup when choosing what to join next.
	off = 2*n*n + n
	for row, tree := range forest {
		if row >= n {
			break
		}
		card := sc.cardOf(q, s.Est, tree)
		features[off+row] = math.Log10(card+1) / 10
	}
	return features
}

// PairMask returns the action mask for the current forest: action x·MaxRels+y
// is valid iff x and y address distinct existing subtrees. The mask is a
// pure function of the forest size, so it is computed once per size and the
// shared cached slice is returned — callers must treat it as read-only.
func (s *Space) PairMask(forestSize int) []bool {
	s.maskOnce.Do(func() {
		s.masks = make([][]bool, s.MaxRels+1)
		for k := range s.masks {
			s.masks[k] = s.buildPairMask(k)
		}
	})
	k := forestSize
	if k > s.MaxRels {
		k = s.MaxRels
	}
	if k < 0 {
		k = 0
	}
	return s.masks[k]
}

func (s *Space) buildPairMask(forestSize int) []bool {
	n := s.MaxRels
	mask := make([]bool, n*n)
	for x := 0; x < forestSize && x < n; x++ {
		for y := 0; y < forestSize && y < n; y++ {
			if x != y {
				mask[x*n+y] = true
			}
		}
	}
	return mask
}

// ConnectedPairMask is PairMask restricted to pairs connected by at least
// one join predicate (used when cross products are disallowed). If no
// connected pair exists, it falls back to the unrestricted mask so episodes
// can always finish.
func (s *Space) ConnectedPairMask(q *query.Query, forest []plan.Node) []bool {
	return s.ConnectedPairMaskScratch(q, forest, nil)
}

// ConnectedPairMaskScratch is ConnectedPairMask reusing a Scratch's subtree
// alias-set memo. The mask itself is freshly allocated (it varies with join
// structure and is retained by trajectories); the fallback returns the
// shared PairMask cache entry, which callers must treat as read-only.
func (s *Space) ConnectedPairMaskScratch(q *query.Query, forest []plan.Node, sc *Scratch) []bool {
	if sc == nil {
		sc = &Scratch{}
	}
	n := s.MaxRels
	mask := make([]bool, n*n)
	any := false
	for x := 0; x < len(forest) && x < n; x++ {
		ax := sc.aliasesOf(forest[x])
		for y := 0; y < len(forest) && y < n; y++ {
			if x == y {
				continue
			}
			if q.HasJoinBetween(ax, sc.aliasesOf(forest[y])) {
				mask[x*n+y] = true
				any = true
			}
		}
	}
	if !any {
		return s.PairMask(len(forest))
	}
	return mask
}

// DecodeAction splits an action id into its (x, y) pair.
func (s *Space) DecodeAction(a int) (x, y int) {
	return a / s.MaxRels, a % s.MaxRels
}

// EncodeAction builds the action id of the (x, y) pair.
func (s *Space) EncodeAction(x, y int) int {
	return x*s.MaxRels + y
}

// depthWeights assigns 1/2^depth to every relation in the subtree.
func depthWeights(n plan.Node, depth int, out map[string]float64) {
	switch n := n.(type) {
	case *plan.Scan:
		out[n.Alias] = 1 / float64(int64(1)<<uint(depth))
	default:
		for _, c := range n.Children() {
			depthWeights(c, depth+1, out)
		}
	}
}
