// Package featurize converts optimizer states into the fixed-length vectors
// the paper's neural agents consume. The encoding follows ReJOIN (§3): each
// join subtree is a row vector weighting its relations by 1/2^depth, plus a
// join-graph adjacency block and a per-relation predicate-selectivity block.
package featurize

import (
	"math"
	"sort"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
)

// Space is a fixed-size featurization context: it pins the maximum relation
// count so every query in a workload maps into vectors of identical length
// (the network input dimension).
type Space struct {
	// MaxRels bounds the number of relations per query.
	MaxRels int
	// Est supplies filter selectivities for the predicate block.
	Est *stats.Estimator
}

// NewSpace builds a featurization space.
func NewSpace(maxRels int, est *stats.Estimator) *Space {
	return &Space{MaxRels: maxRels, Est: est}
}

// ObsDim is the length of the state vectors: MaxRels² for subtree rows,
// MaxRels² for the join graph, MaxRels for per-relation selectivities, and
// MaxRels for per-subtree estimated cardinalities.
func (s *Space) ObsDim() int {
	return 2*s.MaxRels*s.MaxRels + 2*s.MaxRels
}

// ActionDim is the size of the join-pair action space: all ordered pairs.
func (s *Space) ActionDim() int {
	return s.MaxRels * s.MaxRels
}

// AliasIndex returns the query's aliases in sorted order; the position of an
// alias in this slice is its feature index.
func AliasIndex(q *query.Query) []string {
	out := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = r.Alias
	}
	sort.Strings(out)
	return out
}

// JoinState encodes the current forest of join subtrees. The subtree block
// has one row per current subtree (in forest order); entry (row, i) is
// 1/2^depth of relation i within that subtree, 0 if absent. The join-graph
// and selectivity blocks are constant per query.
func (s *Space) JoinState(q *query.Query, forest []plan.Node) []float64 {
	n := s.MaxRels
	features := make([]float64, s.ObsDim())
	idx := aliasPos(q)

	// Subtree block.
	for row, tree := range forest {
		if row >= n {
			break
		}
		weights := map[string]float64{}
		depthWeights(tree, 0, weights)
		for alias, w := range weights {
			if i, ok := idx[alias]; ok && i < n {
				features[row*n+i] = w
			}
		}
	}
	// Join-graph block.
	off := n * n
	for _, j := range q.Joins {
		a, aok := idx[j.LeftAlias]
		b, bok := idx[j.RightAlias]
		if aok && bok && a < n && b < n {
			features[off+a*n+b] = 1
			features[off+b*n+a] = 1
		}
	}
	// Selectivity block.
	off = 2 * n * n
	for alias, i := range idx {
		if i < n {
			features[off+i] = s.Est.BaseSelectivity(q, alias)
		}
	}
	// Cardinality block: log-scaled estimated output size of each current
	// subtree. Without it the policy cannot distinguish a tiny dimension
	// subtree from a fact-table blowup when choosing what to join next.
	off = 2*n*n + n
	for row, tree := range forest {
		if row >= n {
			break
		}
		card := s.Est.SubsetCard(q, tree.Aliases())
		features[off+row] = math.Log10(card+1) / 10
	}
	return features
}

// PairMask returns the action mask for the current forest: action x·MaxRels+y
// is valid iff x and y address distinct existing subtrees.
func (s *Space) PairMask(forestSize int) []bool {
	n := s.MaxRels
	mask := make([]bool, n*n)
	for x := 0; x < forestSize && x < n; x++ {
		for y := 0; y < forestSize && y < n; y++ {
			if x != y {
				mask[x*n+y] = true
			}
		}
	}
	return mask
}

// ConnectedPairMask is PairMask restricted to pairs connected by at least
// one join predicate (used when cross products are disallowed). If no
// connected pair exists, it falls back to the unrestricted mask so episodes
// can always finish.
func (s *Space) ConnectedPairMask(q *query.Query, forest []plan.Node) []bool {
	n := s.MaxRels
	mask := make([]bool, n*n)
	any := false
	for x := 0; x < len(forest) && x < n; x++ {
		for y := 0; y < len(forest) && y < n; y++ {
			if x == y {
				continue
			}
			if len(q.JoinsBetween(forest[x].Aliases(), forest[y].Aliases())) > 0 {
				mask[x*n+y] = true
				any = true
			}
		}
	}
	if !any {
		return s.PairMask(len(forest))
	}
	return mask
}

// DecodeAction splits an action id into its (x, y) pair.
func (s *Space) DecodeAction(a int) (x, y int) {
	return a / s.MaxRels, a % s.MaxRels
}

// EncodeAction builds the action id of the (x, y) pair.
func (s *Space) EncodeAction(x, y int) int {
	return x*s.MaxRels + y
}

func aliasPos(q *query.Query) map[string]int {
	idx := map[string]int{}
	for i, a := range AliasIndex(q) {
		idx[a] = i
	}
	return idx
}

// depthWeights assigns 1/2^depth to every relation in the subtree.
func depthWeights(n plan.Node, depth int, out map[string]float64) {
	switch n := n.(type) {
	case *plan.Scan:
		out[n.Alias] = 1 / float64(int64(1)<<uint(depth))
	default:
		for _, c := range n.Children() {
			depthWeights(c, depth+1, out)
		}
	}
}
