package handsfree

import (
	"math"
	"testing"
)

// TestSketchPlanningParity: planning on sketch-backed statistics produces
// plans competitive with histogram-backed planning. Both systems share one
// synthetic database (same seed and scale); each plans the seed workload
// with its own cost model, and both resulting plans are then costed under
// the exact model — the sketch planner's beliefs pick the plan, the exact
// model judges it. The geometric-mean cost ratio must stay within 1.5×.
func TestSketchPlanningParity(t *testing.T) {
	exact, err := Open(Config{Seed: 1, Scale: 0.05, Stats: StatsExact})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Open(Config{Seed: 1, Scale: 0.05, Stats: StatsSketch})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := exact.Workload.Training(16, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}

	logSum, worst := 0.0, 1.0
	var worstIdx int
	for i, q := range qs {
		pe, err := exact.Planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := sk.Planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		ce := exact.Cost.Cost(q, pe.Root)
		cs := exact.Cost.Cost(q, ps.Root)
		if ce <= 0 || math.IsInf(cs, 1) {
			t.Fatalf("query %d: degenerate costs exact=%v sketch=%v", i, ce, cs)
		}
		ratio := cs / ce
		if ratio > worst {
			worst, worstIdx = ratio, i
		}
		logSum += math.Log(ratio)
	}
	geomean := math.Exp(logSum / float64(len(qs)))
	t.Logf("sketch/exact plan cost: geomean %.3f, worst %.3f (query %d)", geomean, worst, worstIdx)
	if geomean > 1.5 {
		t.Fatalf("sketch-stats planning geomean cost ratio %.3f exceeds 1.5x parity bound", geomean)
	}
}
