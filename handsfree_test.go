package handsfree

import (
	"strings"
	"testing"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Open(Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenDefaults(t *testing.T) {
	sys := testSystem(t)
	if sys.DB == nil || sys.Planner == nil || sys.Latency == nil || sys.Engine == nil {
		t.Fatal("Open left components nil")
	}
	if n := sys.DB.Catalog.NumTables(); n != 21 {
		t.Fatalf("catalog has %d tables, want 21", n)
	}
}

func TestPlanSQLEndToEnd(t *testing.T) {
	sys := testSystem(t)
	planned, err := sys.PlanSQL(`SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE mc.movie_id = t.id AND t.production_year > 50`)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Cost <= 0 {
		t.Fatalf("cost %v", planned.Cost)
	}
	explain := ExplainPlan(planned.Root)
	if !strings.Contains(explain, "title") || !strings.Contains(explain, "movie_companies") {
		t.Fatalf("explain output missing relations:\n%s", explain)
	}
}

func TestExecuteMatchesPlanShape(t *testing.T) {
	sys := testSystem(t)
	q, err := ParseSQL(`SELECT COUNT(*) FROM title t WHERE t.production_year > 100`)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := sys.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, work, err := sys.Execute(q, planned.Root)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("aggregate result rows = %d, want 1", res.N)
	}
	if work.TuplesRead == 0 {
		t.Fatal("no work recorded")
	}
}

func TestSimulateLatencyPositiveAndDeterministic(t *testing.T) {
	sys := testSystem(t)
	q := sys.Workload.MustNamed("1a")
	planned, err := sys.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	l1 := sys.SimulateLatency(q, planned.Root)
	l2 := sys.SimulateLatency(q, planned.Root)
	if l1 <= 0 || l1 != l2 {
		t.Fatalf("latency %v / %v", l1, l2)
	}
}

func TestReJOINAgentAPI(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	agent.Train(50)
	node, cost := agent.Plan(queries[0])
	if node == nil || cost <= 0 {
		t.Fatalf("agent produced plan=%v cost=%v", node, cost)
	}
}

func TestReJOINAgentRejectsOversizedQueries(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(2, 6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewReJOINAgent(queries, ReJOINConfig{MaxRelations: 4, Seed: 1}); err == nil {
		t.Fatal("agent accepted queries above MaxRelations")
	}
}

func TestParseSQLErrors(t *testing.T) {
	if _, err := ParseSQL("DROP TABLE title"); err == nil {
		t.Fatal("accepted non-SELECT statement")
	}
}

func TestReJOINAgentTrainAsync(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	agent.TrainAsync(50, AsyncConfig{Actors: 4, Staleness: 2})
	node, cost := agent.Plan(queries[0])
	if node == nil || cost <= 0 {
		t.Fatalf("async-trained agent produced plan=%v cost=%v", node, cost)
	}
}
