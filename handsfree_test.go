package handsfree

import (
	"bytes"
	"strings"
	"testing"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Open(Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenDefaults(t *testing.T) {
	sys := testSystem(t)
	if sys.DB == nil || sys.Planner == nil || sys.Latency == nil || sys.Engine == nil {
		t.Fatal("Open left components nil")
	}
	if n := sys.DB.Catalog.NumTables(); n != 21 {
		t.Fatalf("catalog has %d tables, want 21", n)
	}
}

func TestPlanSQLEndToEnd(t *testing.T) {
	sys := testSystem(t)
	planned, err := sys.PlanSQL(`SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE mc.movie_id = t.id AND t.production_year > 50`)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Cost <= 0 {
		t.Fatalf("cost %v", planned.Cost)
	}
	explain := ExplainPlan(planned.Root)
	if !strings.Contains(explain, "title") || !strings.Contains(explain, "movie_companies") {
		t.Fatalf("explain output missing relations:\n%s", explain)
	}
}

func TestExecuteMatchesPlanShape(t *testing.T) {
	sys := testSystem(t)
	q, err := ParseSQL(`SELECT COUNT(*) FROM title t WHERE t.production_year > 100`)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := sys.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, work, err := sys.Execute(q, planned.Root)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("aggregate result rows = %d, want 1", res.N)
	}
	if work.TuplesRead == 0 {
		t.Fatal("no work recorded")
	}
}

func TestSimulateLatencyPositiveAndDeterministic(t *testing.T) {
	sys := testSystem(t)
	q := sys.Workload.MustNamed("1a")
	planned, err := sys.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	l1 := sys.SimulateLatency(q, planned.Root)
	l2 := sys.SimulateLatency(q, planned.Root)
	if l1 <= 0 || l1 != l2 {
		t.Fatalf("latency %v / %v", l1, l2)
	}
}

func TestReJOINAgentAPI(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	agent.Train(50)
	node, cost := agent.Plan(queries[0])
	if node == nil || cost <= 0 {
		t.Fatalf("agent produced plan=%v cost=%v", node, cost)
	}
}

func TestReJOINAgentRejectsOversizedQueries(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(2, 6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewReJOINAgent(queries, ReJOINConfig{MaxRelations: 4, Seed: 1}); err == nil {
		t.Fatal("agent accepted queries above MaxRelations")
	}
}

func TestParseSQLErrors(t *testing.T) {
	if _, err := ParseSQL("DROP TABLE title"); err == nil {
		t.Fatal("accepted non-SELECT statement")
	}
}

func TestReJOINAgentTrainAsync(t *testing.T) {
	sys := testSystem(t)
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	agent.TrainAsync(50, AsyncConfig{Actors: 4, Staleness: 2})
	node, cost := agent.Plan(queries[0])
	if node == nil || cost <= 0 {
		t.Fatalf("async-trained agent produced plan=%v cost=%v", node, cost)
	}
}

func TestPrecisionKnobThreadsToAgents(t *testing.T) {
	sys, err := Open(Config{Scale: 0.05, Precision: F32})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Precision != F32 {
		t.Fatalf("system precision %v, want f32", sys.Precision)
	}
	queries, err := sys.Workload.Training(3, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Agent inherits the system-wide precision…
	agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	agent.Train(20)
	if node, cost := agent.Plan(queries[0]); node == nil || cost <= 0 {
		t.Fatalf("f32 agent produced plan=%v cost=%v", node, cost)
	}
	// …and a per-agent override beats it.
	f64agent, err := sys.NewReJOINAgent(queries, ReJOINConfig{Seed: 1, Hidden: []int{16}, Precision: F64})
	if err != nil {
		t.Fatal(err)
	}
	f64agent.Train(20)
	if node, cost := f64agent.Plan(queries[0]); node == nil || cost <= 0 {
		t.Fatalf("f64-override agent produced plan=%v cost=%v", node, cost)
	}
}

func TestPlanCacheWarmStartAPI(t *testing.T) {
	cold, err := Open(Config{Scale: 0.05, Cache: CacheConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := cold.Workload.ByRelations(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Plan(q); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.SavePlanCache(&buf); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(Config{Scale: 0.05, Cache: CacheConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := warm.LoadPlanCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("no entries restored from the dump")
	}
	q2, err := warm.Workload.ByRelations(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Plan(q2); err != nil {
		t.Fatal(err)
	}
	st := warm.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("warm-started system planned without cache hits: %+v", st)
	}

	// Cache disabled → explicit errors, not nil panics.
	bare := testSystem(t)
	if err := bare.SavePlanCache(&buf); err == nil {
		t.Fatal("SavePlanCache succeeded without a cache")
	}
	if _, err := bare.LoadPlanCache(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadPlanCache succeeded without a cache")
	}
}

func TestLoadPlanCacheRejectsDifferentSystem(t *testing.T) {
	src, err := Open(Config{Scale: 0.05, Cache: CacheConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := src.Workload.ByRelations(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Plan(q); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SavePlanCache(&buf); err != nil {
		t.Fatal(err)
	}
	// A differently scaled system computes different plans/costs for the
	// same fingerprints: the dump must be refused, not silently served.
	other, err := Open(Config{Scale: 0.1, Cache: CacheConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadPlanCache(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("plan-cache dump from a different system configuration loaded without error")
	}
}
