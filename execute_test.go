package handsfree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestServiceExecuteUntrained: Execute works before any lifecycle — it serves
// and runs the expert plan, observes a real latency, and records the
// execution as an expert baseline in the history store.
func TestServiceExecuteUntrained(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	for _, q := range svc.Queries() {
		res, err := svc.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != SourceExpert || res.Plan == nil {
			t.Fatalf("untrained Execute served %+v", res.PlanResult)
		}
		if res.TimedOut || res.Failed {
			t.Fatalf("untrained Execute degraded: %+v", res)
		}
		if !(res.LatencyMs > 0) || res.WorkUnits <= 0 {
			t.Fatalf("no observed latency/work: %+v", res)
		}
		if res.Fingerprint == 0 {
			t.Fatal("decision carries no fingerprint")
		}
	}
	st := svc.ExecStats()
	if st.Executions != uint64(len(svc.Queries())) || st.Failures != 0 {
		t.Fatalf("exec stats %+v", st)
	}
	if st.History.Expert != st.History.Records || st.History.Learned != 0 {
		t.Fatalf("expert executions recorded as %+v", st.History)
	}
	if _, err := svc.ExecuteSQL(ctx, `SELECT COUNT(*) FROM title t WHERE t.production_year > 50`); err != nil {
		t.Fatal(err)
	}
}

// learnedDivergent publishes learned policies until some workload query is
// served a learned plan whose signature differs from the expert's, returning
// that query and its decision. The cost guard must be disabled on svc.
func learnedDivergent(t *testing.T, svc *Service) (*Query, PlanResult) {
	t.Helper()
	for seed := int64(1); seed <= 8; seed++ {
		publishRandomPolicy(t, svc, 40+seed)
		for _, q := range svc.Queries() {
			res, err := svc.Plan(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Source == SourceLearned && res.Plan.Signature() != res.expertPlan.Signature() {
				return q, res
			}
		}
	}
	t.Fatal("no published policy produced a learned plan diverging from the expert's")
	return nil, PlanResult{}
}

// TestServiceExecuteRecordsHistoryAndProbes: served learned executions land
// in the learned window, the expert baseline is refreshed by shadow probes,
// and the rolling ratio becomes defined once both windows hold their minima.
func TestServiceExecuteRecordsHistoryAndProbes(t *testing.T) {
	svc, err := New(WithScale(0.05), WithWorkload(3, 4, 5, 5), WithFallbackRatio(0),
		WithExecution(ExecutionConfig{MinLearned: 2, MinExpert: 1, ProbeEvery: 2, GuardRatio: -1, DriftRatio: -1}))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := learnedDivergent(t, svc)
	ctx := context.Background()
	var last ExecResult
	for i := 0; i < 6; i++ {
		last, err = svc.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if last.Source != SourceLearned {
			t.Fatalf("guardless Execute %d served %v", i, last.Source)
		}
	}
	st := svc.ExecStats()
	if st.History.Learned < 6 {
		t.Fatalf("learned window holds %d records, want ≥ 6", st.History.Learned)
	}
	// Probes every 2 learned executions: the expert baseline must have been
	// refreshed several times even though only learned plans were served.
	if st.History.Expert < 2 {
		t.Fatalf("expert baseline has %d records despite probing: %+v", st.History.Expert, st.History)
	}
	if ratio, ln, en := svc.ObservedRatio(q); math.IsNaN(ratio) || ratio <= 0 {
		t.Fatalf("rolling ratio undefined after 6 executions: %v (windows %d/%d)", ratio, ln, en)
	}
}

// TestServiceExecuteFailureFallsBackToExpert: an injected failure of the
// served learned plan is absorbed — the expert plan is executed and served
// (Failed, SourceFallback), never an error to the caller.
func TestServiceExecuteFailureFallsBackToExpert(t *testing.T) {
	svc, err := New(WithScale(0.05), WithWorkload(3, 4, 5, 5), WithFallbackRatio(0),
		WithExecution(ExecutionConfig{GuardRatio: -1, DriftRatio: -1}))
	if err != nil {
		t.Fatal(err)
	}
	q, res := learnedDivergent(t, svc)
	svc.Faults().FailPlan(res.Plan.Signature())

	out, err := svc.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("failure was not absorbed: %v", err)
	}
	if !out.Failed || out.Source != SourceFallback {
		t.Fatalf("failed learned execution served %+v", out)
	}
	if out.Plan.Signature() != res.expertPlan.Signature() || out.Cost != out.ExpertCost {
		t.Fatal("failure fallback did not serve the expert plan")
	}
	if !(out.LatencyMs > 0) {
		t.Fatalf("fallback execution observed no latency: %+v", out)
	}
	st := svc.ExecStats()
	if st.Failures == 0 || st.History.Failures == 0 {
		t.Fatalf("failure not counted: %+v", st)
	}

	// When the expert plan itself fails too, the error surfaces.
	svc.Faults().FailPlan(res.expertPlan.Signature())
	if _, err := svc.Execute(context.Background(), q); err == nil {
		t.Fatal("both plans failing produced no error")
	}
}

// TestServiceLatencyGuard: once the observed rolling latency of a
// fingerprint's learned plans regresses past GuardRatio × the expert's, the
// decision falls back to the expert plan (LatencyGuarded) — and the guard
// never serves a learned plan from a regressed fingerprint.
func TestServiceLatencyGuard(t *testing.T) {
	svc, err := New(WithScale(0.05), WithWorkload(3, 4, 5, 5), WithFallbackRatio(0),
		WithExecution(ExecutionConfig{MinLearned: 2, MinExpert: 1, ProbeEvery: 2, GuardRatio: 1.5, DriftRatio: -1}))
	if err != nil {
		t.Fatal(err)
	}
	q, res := learnedDivergent(t, svc)
	svc.Faults().InflatePlan(res.Plan.Signature(), 50)

	ctx := context.Background()
	guarded := false
	for i := 0; i < 40 && !guarded; i++ {
		out, err := svc.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		// The invariant under test: a decision made while the rolling ratio
		// exceeded the guard must not have served the learned plan.
		dec, err := svc.Plan(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if dec.LatencyRatio > svc.execCfg.GuardRatio && dec.Source == SourceLearned {
			t.Fatalf("guard breached: learned plan served at ratio %.2f", dec.LatencyRatio)
		}
		guarded = out.LatencyGuarded || dec.LatencyGuarded
	}
	if !guarded {
		t.Fatal("inflated learned latency never tripped the guard")
	}
	st := svc.ExecStats()
	if st.LatencyGuarded == 0 {
		t.Fatalf("guard fired but was not counted: %+v", st)
	}
	// Guarded decisions keep executing the expert plan; its observed
	// latency stays healthy (well under the inflated learned latencies).
	out, err := svc.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source == SourceLearned {
		t.Fatal("regressed fingerprint still served the learned plan")
	}
}

// TestSimulateLatencyParity pins the deprecated simulator entry point: it
// still delegates to the analytic latency model, unchanged by the observed
// execution path.
func TestSimulateLatencyParity(t *testing.T) {
	svc := testService(t)
	sys := svc.System()
	for _, q := range svc.Queries() {
		planned, err := sys.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.SimulateLatency(q, planned.Root)
		want := sys.Latency.Latency(q, planned.Root)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("SimulateLatency %v != latency model %v", got, want)
		}
	}
}

// driftLifecycle is quickLifecycle with the resident drift watcher on and
// small re-training budgets.
func driftLifecycle() LifecycleConfig {
	cfg := quickLifecycle()
	cfg.DriftRetrain = true
	cfg.RetrainCostEpisodes = 24
	cfg.RetrainLatencyEpisodes = 8
	return cfg
}

// driftTargets picks the workload queries whose served learned plan diverges
// from the expert's — the fingerprints differential drift can be injected on.
func driftTargets(t *testing.T, svc *Service) []*Query {
	t.Helper()
	var targets []*Query
	for _, q := range svc.Queries() {
		res, err := svc.Plan(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source == SourceLearned && res.Plan.Signature() != res.expertPlan.Signature() {
			targets = append(targets, q)
			svc.Faults().InflatePlan(res.Plan.Signature(), 40)
		}
	}
	return targets
}

// TestServiceDriftRetrainsEndToEnd is the headline feedback-loop test, fully
// deterministic fault injection end to end:
//
//  1. train to PhaseDone with the resident drift watcher on;
//  2. serve Execute traffic to build observed-latency baselines;
//  3. inject a differential regression (inflate the served learned plans'
//     signatures 40×) and keep serving until the drift detector trips and
//     the lifecycle re-enters training — asserting along the way that the
//     latency guard never serves a learned plan from a regressed
//     fingerprint;
//  4. clear the faults (transient incident) and wait for the
//     PhaseDriftRetraining → … → PhaseDone round to complete;
//  5. assert the rolling ratios recovered, learned serving resumed (the
//     fallback rate decays), and policy versions stayed monotone throughout.
func TestServiceDriftRetrainsEndToEnd(t *testing.T) {
	// GuardRatio == DriftRatio: the guard stops serving the learned plan at
	// the same threshold the detector counts as degraded, so any regression
	// the guard freezes out is also one the detector sustains on.
	svc, err := New(WithScale(0.05), WithWorkload(4, 4, 5, 3), WithFallbackRatio(0),
		WithExecution(ExecutionConfig{
			Window: 8, MinLearned: 2, MinExpert: 1, ProbeEvery: 3,
			GuardRatio: 2.0, DriftRatio: 2.0, DriftSustain: 4,
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := svc.StartTraining(ctx, driftLifecycle()); err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitTraining(ctx); err != nil {
		t.Fatal(err)
	}
	if got := svc.Phase(); got != PhaseDone {
		t.Fatalf("phase after training = %v", got)
	}

	// (2) Baseline traffic.
	var lastVersion uint64
	serveRound := func() {
		t.Helper()
		for _, q := range svc.Queries() {
			res, err := svc.Execute(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan == nil || !(res.Cost > 0) {
				t.Fatalf("incomplete decision %+v", res)
			}
			if res.PolicyVersion < lastVersion {
				t.Fatalf("policy version went backwards: %d after %d", res.PolicyVersion, lastVersion)
			}
			lastVersion = res.PolicyVersion
			if res.LatencyRatio > svc.execCfg.GuardRatio && res.Source == SourceLearned {
				t.Fatalf("latency guard breached: learned served at ratio %.2f", res.LatencyRatio)
			}
		}
	}
	for i := 0; i < 4; i++ {
		serveRound()
	}

	// (3) Inject differential drift on every divergent learned plan. If the
	// trained policy happens to reproduce the expert everywhere, hot-swap
	// policies until it diverges (serving-side swap only; the resident
	// lifecycle keeps its own learner for re-training).
	targets := driftTargets(t, svc)
	if len(targets) == 0 {
		_, _ = learnedDivergent(t, svc)
		targets = driftTargets(t, svc)
	}
	if len(targets) == 0 {
		t.Fatal("no learned plan diverges from the expert; cannot inject differential drift")
	}

	deadline := time.Now().Add(90 * time.Second)
	for svc.ExecStats().DriftEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift never tripped; stats %+v", svc.ExecStats())
		}
		for _, q := range targets {
			if _, err := svc.Execute(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
	}

	// (4) The incident is transient: resolve it while the lifecycle retrains.
	svc.Faults().Clear()
	for svc.Phase() != PhaseDone || svc.ExecStats().Retrains == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift re-training never completed: phase %v, stats %+v",
				svc.Phase(), svc.ExecStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	var sawDrift, sawRecost bool
	for _, tr := range svc.LifecycleStats().Transitions {
		if tr.To == PhaseDriftRetraining {
			sawDrift = true
			if tr.Reason == "" {
				t.Fatal("drift transition recorded no reason")
			}
		}
		if tr.From == PhaseDriftRetraining && tr.To == PhaseCostTraining {
			sawRecost = true
		}
	}
	if !sawDrift || !sawRecost {
		t.Fatalf("transitions missing drift re-entry: %+v", svc.LifecycleStats().Transitions)
	}

	// (5) Recovery: the flushed windows refill with healthy latencies, the
	// ratio drops below the drift threshold, and learned serving resumes.
	recovered := false
	var learnedAgain bool
	for !recovered || !learnedAgain {
		if time.Now().After(deadline) {
			t.Fatalf("ratios never recovered: recovered=%v learnedAgain=%v stats %+v",
				recovered, learnedAgain, svc.ExecStats())
		}
		serveRound()
		recovered = true
		for _, q := range targets {
			if ratio, _, _ := svc.ObservedRatio(q); !math.IsNaN(ratio) && ratio >= svc.execCfg.DriftRatio {
				recovered = false
			}
			res, err := svc.Plan(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Source == SourceLearned {
				learnedAgain = true
			}
		}
	}
	// The fallback rate decays after recovery: a healthy round adds no new
	// latency-guard fallbacks on the recovered fingerprints.
	before := svc.ExecStats().LatencyGuarded
	for _, q := range targets {
		if _, err := svc.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if after := svc.ExecStats().LatencyGuarded; after != before {
		t.Fatalf("latency guard still firing after recovery: %d → %d", before, after)
	}
	if err := svc.StopTraining(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConcurrentExecuteDuringDriftRetraining hammers Execute from 8
// goroutines while drift trips and the resident lifecycle re-trains live,
// asserting every decision is complete and policy versions are monotone per
// caller. Run with -race.
func TestServiceConcurrentExecuteDuringDriftRetraining(t *testing.T) {
	svc, err := New(WithScale(0.05), WithWorkload(4, 4, 5, 3), WithFallbackRatio(0),
		WithCache(CacheConfig{Capacity: 1 << 14}),
		WithExecution(ExecutionConfig{
			Window: 8, MinLearned: 2, MinExpert: 1, ProbeEvery: 3,
			GuardRatio: 2.0, DriftRatio: 2.0, DriftSustain: 3,
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := driftLifecycle()
	cfg.RetrainCostEpisodes = 16
	if err := svc.StartTraining(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitTraining(ctx); err != nil {
		t.Fatal(err)
	}

	const hammers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, hammers)
	stop := make(chan struct{})
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := svc.Queries()
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := svc.Execute(ctx, queries[(g+i)%len(queries)])
				if err != nil {
					errCh <- err
					return
				}
				if res.Plan == nil || !(res.Cost > 0) || math.IsNaN(res.Cost) {
					errCh <- errors.New("torn execution decision")
					return
				}
				if !res.TimedOut && (math.IsNaN(res.LatencyMs) || res.LatencyMs <= 0) {
					errCh <- fmt.Errorf("completed execution with latency %v", res.LatencyMs)
					return
				}
				if res.PolicyVersion < lastVersion {
					errCh <- errors.New("policy version went backwards under concurrency")
					return
				}
				lastVersion = res.PolicyVersion
			}
		}(g)
	}

	// Inject drift under load, let the resident lifecycle retrain live, then
	// resolve the incident and wait for it to finish.
	deadline := time.Now().Add(90 * time.Second)
	if len(driftTargets(t, svc)) == 0 {
		_, _ = learnedDivergent(t, svc)
		if len(driftTargets(t, svc)) == 0 {
			close(stop)
			wg.Wait()
			t.Fatal("no learned plan diverges from the expert; cannot inject differential drift")
		}
	}
	for svc.ExecStats().DriftEvents == 0 && svc.Phase() == PhaseDone {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("drift never tripped under hammer load: %+v", svc.ExecStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	svc.Faults().Clear()
	for svc.Phase() != PhaseDone {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("live re-training never completed: phase %v", svc.Phase())
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := svc.ExecStats()
	if st.Executions == 0 || st.History.Records == 0 {
		t.Fatalf("hammer executed nothing: %+v", st)
	}
	if err := svc.StopTraining(ctx); err != nil {
		t.Fatal(err)
	}
	if got := svc.Phase(); got != PhaseStopped {
		t.Fatalf("phase after StopTraining = %v, want stopped", got)
	}
}
