// Command handsfree regenerates the paper's figures and experiments, and
// runs the optimizer-as-a-service lifecycle end to end.
//
//	handsfree fig3a        ReJOIN convergence (Figure 3a)
//	handsfree fig3b        final plan cost per JOB query (Figure 3b)
//	handsfree fig3c        planning time vs relation count (Figure 3c)
//	handsfree naive        §4: naive full-plan-space DRL vs restricted
//	handsfree scratch      §4 footnote 2: latency-as-reward from scratch
//	handsfree lfd          §5.1: learning from demonstration
//	handsfree bootstrap    §5.2: cost-model bootstrapping
//	handsfree incremental  §5.3: incremental learning curricula
//	handsfree service      run the Service lifecycle (demonstration →
//	                       cost training → latency tuning) and serve the
//	                       workload through the safeguarded Plan path
//	handsfree serve        multi-tenant JSON-over-HTTP optimizer server
//	                       with admission control and graceful drain
//	handsfree env          print the resolved compute and serving
//	                       configuration (engine, precision, tile sizes,
//	                       workers, address, tenants, queue, SLO)
//	handsfree all          every experiment in sequence
//
// Flags:
//
//	-quick        miniature substrate and budgets (minutes → seconds)
//	-scale f      database scale factor override
//	-seed n       experiment seed override
//	-precision s  tensor-core precision for learned agents: f64 (default,
//	              bitwise-deterministic) or f32 (half the memory bandwidth)
//	-engine s     dense-kernel backend for learned agents: reference
//	              (bitwise-deterministic naive kernels) or blocked
//	              (cache-blocked register-tiled microkernels; default:
//	              HANDSFREE_ENGINE, else the build default)
//	-timeout d    service mode: overall lifecycle deadline, and per-query
//	              planning deadline on the Plan(ctx) serving path
//
// Serve-mode flags (see `handsfree env` for the resolved values):
//
//	-addr s             listen address (default :8080)
//	-tenants n          independent tenants to mount (default 1)
//	-concurrency n      concurrent planning slots (default GOMAXPROCS)
//	-queue n            admission queue depth (default 4×concurrency)
//	-slo d              queue-wait SLO before load shedding (default 500ms)
//	-request-timeout d  default per-request planning deadline (default 30s)
//	-max-timeout d      cap on client-requested timeout_ms (default 2m)
//	-drain d            graceful-drain budget on shutdown (default 30s)
//	-train              start the learning lifecycle on every tenant
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"handsfree"
	"handsfree/internal/experiment"
	"handsfree/internal/nn"
	"handsfree/internal/server"
)

func main() {
	quick := flag.Bool("quick", false, "use miniature budgets")
	scale := flag.Float64("scale", 0, "database scale factor override")
	seed := flag.Int64("seed", 0, "experiment seed override")
	precision := flag.String("precision", "", "tensor-core precision for learned agents: f64 or f32 (default: HANDSFREE_PRECISION, else f64)")
	engineFlag := flag.String("engine", "", "dense-kernel backend for learned agents: reference or blocked (default: HANDSFREE_ENGINE, else the build default)")
	timeout := flag.Duration("timeout", 0, "service mode: lifecycle deadline and per-query planning deadline (0 = none)")
	addr := flag.String("addr", "", "serve mode: listen address (default :8080)")
	tenants := flag.Int("tenants", 1, "serve mode: number of independent tenants to mount")
	concurrency := flag.Int("concurrency", 0, "serve mode: concurrent planning slots (default GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "serve mode: admission queue depth (default 4×concurrency)")
	slo := flag.Duration("slo", 0, "serve mode: queue-wait SLO before load shedding (default 500ms)")
	reqTimeout := flag.Duration("request-timeout", 0, "serve mode: default per-request planning deadline (default 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "serve mode: cap on client-requested timeout_ms (default 2m)")
	drain := flag.Duration("drain", 0, "serve mode: graceful-drain budget on shutdown (default 30s)")
	train := flag.Bool("train", false, "serve mode: start the learning lifecycle on every tenant")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if *precision != "" {
		if _, err := nn.ParsePrecision(*precision); err != nil {
			fatal(err)
		}
		// The experiments build their agents with PrecisionAuto, which
		// resolves through this env var on first use — set it before the lab
		// constructs any network.
		os.Setenv("HANDSFREE_PRECISION", *precision)
	}
	if *engineFlag != "" {
		if _, err := nn.ParseEngine(*engineFlag); err != nil {
			fatal(err)
		}
		// Same pattern as -precision: agents resolve EngineAuto through this
		// env var on first use.
		os.Setenv("HANDSFREE_ENGINE", *engineFlag)
	}
	cmd := strings.ToLower(flag.Arg(0))

	serveCfg := server.Config{
		Addr:           *addr,
		Concurrency:    *concurrency,
		QueueDepth:     *queueDepth,
		SLO:            *slo,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drain,
	}

	if cmd == "env" {
		printEnv(serveCfg, *tenants)
		return
	}

	if cmd == "service" {
		runService(*quick, *scale, *seed, *timeout)
		return
	}

	if cmd == "serve" {
		runServe(serveCfg, *tenants, *train, *quick, *scale, *seed)
		return
	}

	labCfg := experiment.DefaultLabConfig()
	if *quick {
		labCfg = experiment.QuickLabConfig()
	}
	if *scale > 0 {
		labCfg.Scale = *scale
	}
	fmt.Fprintf(os.Stderr, "building substrate (scale %.2f)…\n", labCfg.Scale)
	lab, err := experiment.NewLab(labCfg)
	if err != nil {
		fatal(err)
	}

	run := func(name string, f func() (renderer, error)) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s…\n", name)
		res, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "%s finished in %s\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	experiments := map[string]func(){
		"fig3a": func() {
			cfg := experiment.DefaultFig3aConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount, cfg.MaxRel, cfg.Window = 3000, 10, 6, 200
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3a", func() (renderer, error) { return lab.Fig3a(cfg) })
		},
		"fig3b": func() {
			cfg := experiment.DefaultFig3bConfig()
			if *quick {
				cfg.Episodes = 3000
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3b", func() (renderer, error) { return lab.Fig3b(cfg) })
		},
		"fig3c": func() {
			cfg := experiment.DefaultFig3cConfig()
			if *quick {
				cfg.Repeats = 2
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3c", func() (renderer, error) { return lab.Fig3c(cfg) })
		},
		"naive": func() {
			cfg := experiment.DefaultNaiveConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.EvalEvery = 4000, 8, 4, 6, 500
			}
			applySeed(&cfg.Seed, *seed)
			run("naive", func() (renderer, error) { return lab.NaiveFullSpace(cfg) })
		},
		"scratch": func() {
			cfg := experiment.DefaultScratchLatencyConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount = 120, 8
			}
			applySeed(&cfg.Seed, *seed)
			run("scratch", func() (renderer, error) { return lab.LatencyFromScratch(cfg) })
		},
		"lfd": func() {
			cfg := experiment.DefaultLfDConfig()
			if *quick {
				cfg.QueryCount, cfg.PretrainBatches, cfg.FineTuneEpisodes = 8, 1200, 250
			}
			applySeed(&cfg.Seed, *seed)
			run("lfd", func() (renderer, error) { return lab.LfDExperiment(cfg) })
		},
		"bootstrap": func() {
			cfg := experiment.DefaultBootstrapConfig()
			if *quick {
				cfg.QueryCount, cfg.Phase1Episodes, cfg.Phase2Episodes, cfg.EvalEvery = 8, 1500, 800, 200
				cfg.MinRel, cfg.MaxRel = 4, 6
			}
			applySeed(&cfg.Seed, *seed)
			run("bootstrap", func() (renderer, error) { return lab.BootstrapExperiment(cfg) })
		},
		"incremental": func() {
			cfg := experiment.DefaultCurriculumConfig()
			if *quick {
				cfg.QueryCount, cfg.EpisodesPerPhase, cfg.MaxRel = 12, 400, 5
			}
			applySeed(&cfg.Seed, *seed)
			run("incremental", func() (renderer, error) { return lab.CurriculumExperiment(cfg) })
		},
		"ablation-oracle": func() {
			cfg := experiment.DefaultAblationOracleConfig()
			if *quick {
				cfg.QueryCount = 8
			}
			applySeed(&cfg.Seed, *seed)
			run("ablation-oracle", func() (renderer, error) { return lab.AblationOracle(cfg) })
		},
		"ablation-enum": func() {
			cfg := experiment.DefaultAblationEnumeratorConfig()
			if *quick {
				cfg.Repeats = 2
			}
			applySeed(&cfg.Seed, *seed)
			run("ablation-enum", func() (renderer, error) { return lab.AblationEnumerator(cfg) })
		},
	}

	if cmd == "all" {
		for _, name := range []string{"fig3a", "fig3b", "fig3c", "naive", "scratch", "lfd", "bootstrap", "incremental", "ablation-oracle", "ablation-enum"} {
			experiments[name]()
		}
		return
	}
	f, ok := experiments[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	f()
}

// runService is the optimizer-as-a-service demo: build a Service, run the
// learning state machine in the background while serving the workload, then
// report the lifecycle transitions and serving counters. The -timeout flag
// bounds the whole lifecycle via context and each Plan call individually.
func runService(quick bool, scale float64, seed int64, timeout time.Duration) {
	if scale == 0 {
		scale = 0.25
		if quick {
			scale = 0.05
		}
	}
	if seed == 0 {
		seed = 3
	}
	lifecycleCtx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		lifecycleCtx, cancel = context.WithTimeout(lifecycleCtx, timeout)
	}
	defer cancel()
	planCtx := func() (context.Context, context.CancelFunc) {
		if timeout > 0 {
			return context.WithTimeout(context.Background(), timeout)
		}
		return context.Background(), func() {}
	}

	fmt.Fprintf(os.Stderr, "building service (scale %.2f)…\n", scale)
	svc, err := handsfree.New(
		handsfree.WithScale(scale),
		handsfree.WithWorkload(8, 4, 6, seed),
		handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}),
	)
	if err != nil {
		fatal(err)
	}

	cfg := handsfree.LifecycleConfig{Seed: seed}
	if quick {
		cfg.PretrainBatches = 12
		cfg.CostEpisodes = 96
		cfg.EvalEvery = 48
		cfg.LatencyEpisodes = 32
	}
	start := time.Now()
	if err := svc.StartTraining(lifecycleCtx, cfg); err != nil {
		fatal(err)
	}
	// Serve while training: the policy hot-swaps under these Plan calls.
	served := 0
	for svc.TrainingActive() {
		for _, q := range svc.Queries() {
			ctx, done := planCtx()
			if _, err := svc.Plan(ctx, q); err == nil {
				served++
			}
			done()
		}
	}
	if err := svc.WaitTraining(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "lifecycle stopped: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "lifecycle finished in %s (%d plans served during training)\n\n",
		time.Since(start).Round(time.Millisecond), served)

	st := svc.LifecycleStats()
	fmt.Printf("phase: %s (policy v%d)\n", st.Phase, st.PolicyVersion)
	for _, tr := range st.Transitions {
		fmt.Printf("  %s → %s: %s\n", tr.From, tr.To, tr.Reason)
	}
	fmt.Printf("demonstrations: %d, pretrain batches: %d, cost episodes: %d (ratio %.3f), latency episodes: %d\n",
		st.Demonstrations, st.PretrainBatches, st.CostEpisodes, st.CostRatio, st.LatencyEpisodes)

	fmt.Println("\nexecuting the workload through the safeguarded path:")
	for _, q := range svc.Queries() {
		ctx, done := planCtx()
		res, err := svc.Execute(ctx, q)
		done()
		if err != nil {
			fmt.Printf("  %-24s aborted: %v\n", q.Name, err)
			continue
		}
		note := ""
		switch {
		case res.Failed:
			note = " [exec-failed→expert]"
		case res.LatencyGuarded:
			note = " [latency-guard]"
		}
		fmt.Printf("  %-24s source %-8s cost %12.1f  observed %8.2f ms  (expert %12.1f, policy v%d)%s\n",
			q.Name, res.Source, res.Cost, res.LatencyMs, res.ExpertCost, res.PolicyVersion, note)
	}
	final := svc.LifecycleStats()
	fmt.Printf("\nserving counters: %d plans, %d learned, %d expert, %d fallbacks (guard ratio %.2f)\n",
		final.Plans, final.LearnedServed, final.ExpertServed, final.Fallbacks, svc.FallbackRatio())
	es := svc.ExecStats()
	fmt.Printf("execution feedback: %d executions, %d timed out, %d failures, %d latency-guarded, %d drift events, %d retrains (%d fingerprints tracked)\n",
		es.Executions, es.TimedOut, es.Failures, es.LatencyGuarded, es.DriftEvents, es.Retrains, es.History.Fingerprints)
}

// runServe mounts N independent tenants — each its own handsfree.Service
// with its own substrate, plan cache, and lifecycle — behind one HTTP
// listener with admission control, then serves until SIGINT/SIGTERM, at
// which point it drains gracefully: in-flight plans complete, training
// stops at an episode boundary, new requests bounce with 503.
func runServe(cfg server.Config, tenantCount int, train, quick bool, scale float64, seed int64) {
	if tenantCount < 1 {
		fatal(fmt.Errorf("-tenants must be at least 1, got %d", tenantCount))
	}
	if scale == 0 {
		scale = 0.25
		if quick {
			scale = 0.05
		}
	}
	if seed == 0 {
		seed = 3
	}

	reg := server.NewRegistry()
	services := make([]*handsfree.Service, 0, tenantCount)
	for i := 0; i < tenantCount; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		fmt.Fprintf(os.Stderr, "building %s (scale %.2f, seed %d)…\n", name, scale, seed+int64(i))
		svc, err := handsfree.New(
			handsfree.WithScale(scale),
			handsfree.WithWorkload(8, 4, 6, seed+int64(i)),
			handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}),
		)
		if err != nil {
			fatal(err)
		}
		if _, err := reg.Add(name, svc); err != nil {
			fatal(err)
		}
		services = append(services, svc)
	}

	if train {
		for i, svc := range services {
			lc := handsfree.LifecycleConfig{Seed: seed + int64(i)}
			if quick {
				lc.PretrainBatches = 12
				lc.CostEpisodes = 96
				lc.EvalEvery = 48
				lc.LatencyEpisodes = 32
			}
			if err := svc.StartTraining(context.Background(), lc); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "learning lifecycle started on %d tenant(s)\n", tenantCount)
	}

	srv := server.New(cfg, reg)
	fmt.Fprint(os.Stderr, srv.Config().Describe(tenantCount))
	httpSrv := &http.Server{Addr: srv.Config().Addr, Handler: srv.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "listening on %s\n", srv.Config().Addr)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "\n%s: draining (budget %s)…\n", sig, srv.Config().DrainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), srv.Config().DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "listener shutdown: %v\n", err)
		}
		fmt.Fprintln(os.Stderr, "drained")
	case err := <-errCh:
		fatal(err)
	}
}

// printEnv reports the configuration a run with the same flags and
// environment would resolve to, so perf numbers and deployments are
// reproducible: the dense-kernel engine, the tensor precision, the blocked
// engine's tile geometry, the kernel worker-pool width, and the serving
// layer's resolved admission/timeout settings.
func printEnv(serveCfg server.Config, tenants int) {
	mr, nr, kc := nn.BlockedTileConfig()
	fmt.Printf("engine:    %s (HANDSFREE_ENGINE=%q, build default %s)\n",
		nn.DefaultEngine(), os.Getenv("HANDSFREE_ENGINE"), nn.BuildDefaultEngine())
	fmt.Printf("precision: %s (HANDSFREE_PRECISION=%q)\n",
		nn.DefaultPrecision(), os.Getenv("HANDSFREE_PRECISION"))
	cpu := nn.DetectCPU()
	fmt.Printf("cpu features: avx2=%v fma=%v avx512f=%v (HANDSFREE_AVX512=%q)\n",
		cpu.AVX2, cpu.FMA, cpu.AVX512F, os.Getenv("HANDSFREE_AVX512"))
	d := nn.Dispatch()
	fmt.Printf("kernel dispatch: gemm=%s gemv=%s softmax=%s adam=%s\n",
		d.Gemm, d.Gemv, d.Softmax, d.Adam)
	fmt.Printf("blocked kernel: %s (portable tile %dx%d, k-block %d)\n",
		nn.BlockedKernel(), mr, nr, kc)
	fmt.Printf("kernel workers: %d\n", nn.Workers())
	fmt.Print(serveCfg.Describe(tenants))
}

// renderer is anything that can print itself.
type renderer interface{ Render() string }

func applySeed(dst *int64, override int64) {
	if override != 0 {
		*dst = override
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "handsfree:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: handsfree [-quick] [-scale f] [-seed n] [-precision f64|f32] [-engine reference|blocked] [-timeout d] <experiment>

experiments:
  fig3a        ReJOIN convergence (Figure 3a)
  fig3b        final plan cost per JOB query (Figure 3b)
  fig3c        planning time vs relation count (Figure 3c)
  naive        §4 naive full-plan-space DRL vs restricted join-order DRL
  scratch      §4 footnote 2: latency-as-reward, tabula rasa
  lfd          §5.1 learning from demonstration
  bootstrap    §5.2 cost-model bootstrapping (scaled vs unscaled switch)
  incremental  §5.3 incremental learning curricula
  ablation-oracle  latency headroom vs cost-model error strength
  ablation-enum    bushy DP vs left-deep DP vs greedy vs GEQO
  service      optimizer-as-a-service lifecycle: train in the background
               (demonstration → cost → latency), hot-swap policies, serve
               the workload through the safeguarded Plan(ctx) path
               (-timeout bounds the lifecycle and each planning call)
  serve        multi-tenant JSON-over-HTTP optimizer server: POST /plan,
               POST /plansql, GET /phase /stats /cache /healthz, with
               admission control, load shedding, and graceful drain
               (-addr -tenants -concurrency -queue -slo -request-timeout
               -max-timeout -drain -train)
  env          print the resolved compute and serving configuration
               (engine, precision, tile sizes, kernel workers, plus the
               serve-mode address, tenants, queue depth, SLO, timeouts)
  all          run everything
`)
}
