// Command handsfree regenerates the paper's figures and experiments.
//
//	handsfree fig3a        ReJOIN convergence (Figure 3a)
//	handsfree fig3b        final plan cost per JOB query (Figure 3b)
//	handsfree fig3c        planning time vs relation count (Figure 3c)
//	handsfree naive        §4: naive full-plan-space DRL vs restricted
//	handsfree scratch      §4 footnote 2: latency-as-reward from scratch
//	handsfree lfd          §5.1: learning from demonstration
//	handsfree bootstrap    §5.2: cost-model bootstrapping
//	handsfree incremental  §5.3: incremental learning curricula
//	handsfree all          every experiment in sequence
//
// Flags:
//
//	-quick        miniature substrate and budgets (minutes → seconds)
//	-scale f      database scale factor override
//	-seed n       experiment seed override
//	-precision s  tensor-core precision for learned agents: f64 (default,
//	              bitwise-deterministic) or f32 (half the memory bandwidth)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"handsfree/internal/experiment"
	"handsfree/internal/nn"
)

func main() {
	quick := flag.Bool("quick", false, "use miniature budgets")
	scale := flag.Float64("scale", 0, "database scale factor override")
	seed := flag.Int64("seed", 0, "experiment seed override")
	precision := flag.String("precision", "", "tensor-core precision for learned agents: f64 or f32 (default: HANDSFREE_PRECISION, else f64)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if *precision != "" {
		if _, err := nn.ParsePrecision(*precision); err != nil {
			fatal(err)
		}
		// The experiments build their agents with PrecisionAuto, which
		// resolves through this env var on first use — set it before the lab
		// constructs any network.
		os.Setenv("HANDSFREE_PRECISION", *precision)
	}
	cmd := strings.ToLower(flag.Arg(0))

	labCfg := experiment.DefaultLabConfig()
	if *quick {
		labCfg = experiment.QuickLabConfig()
	}
	if *scale > 0 {
		labCfg.Scale = *scale
	}
	fmt.Fprintf(os.Stderr, "building substrate (scale %.2f)…\n", labCfg.Scale)
	lab, err := experiment.NewLab(labCfg)
	if err != nil {
		fatal(err)
	}

	run := func(name string, f func() (renderer, error)) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s…\n", name)
		res, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "%s finished in %s\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	experiments := map[string]func(){
		"fig3a": func() {
			cfg := experiment.DefaultFig3aConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount, cfg.MaxRel, cfg.Window = 3000, 10, 6, 200
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3a", func() (renderer, error) { return lab.Fig3a(cfg) })
		},
		"fig3b": func() {
			cfg := experiment.DefaultFig3bConfig()
			if *quick {
				cfg.Episodes = 3000
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3b", func() (renderer, error) { return lab.Fig3b(cfg) })
		},
		"fig3c": func() {
			cfg := experiment.DefaultFig3cConfig()
			if *quick {
				cfg.Repeats = 2
			}
			applySeed(&cfg.Seed, *seed)
			run("fig3c", func() (renderer, error) { return lab.Fig3c(cfg) })
		},
		"naive": func() {
			cfg := experiment.DefaultNaiveConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.EvalEvery = 4000, 8, 4, 6, 500
			}
			applySeed(&cfg.Seed, *seed)
			run("naive", func() (renderer, error) { return lab.NaiveFullSpace(cfg) })
		},
		"scratch": func() {
			cfg := experiment.DefaultScratchLatencyConfig()
			if *quick {
				cfg.Episodes, cfg.QueryCount = 120, 8
			}
			applySeed(&cfg.Seed, *seed)
			run("scratch", func() (renderer, error) { return lab.LatencyFromScratch(cfg) })
		},
		"lfd": func() {
			cfg := experiment.DefaultLfDConfig()
			if *quick {
				cfg.QueryCount, cfg.PretrainBatches, cfg.FineTuneEpisodes = 8, 1200, 250
			}
			applySeed(&cfg.Seed, *seed)
			run("lfd", func() (renderer, error) { return lab.LfDExperiment(cfg) })
		},
		"bootstrap": func() {
			cfg := experiment.DefaultBootstrapConfig()
			if *quick {
				cfg.QueryCount, cfg.Phase1Episodes, cfg.Phase2Episodes, cfg.EvalEvery = 8, 1500, 800, 200
				cfg.MinRel, cfg.MaxRel = 4, 6
			}
			applySeed(&cfg.Seed, *seed)
			run("bootstrap", func() (renderer, error) { return lab.BootstrapExperiment(cfg) })
		},
		"incremental": func() {
			cfg := experiment.DefaultCurriculumConfig()
			if *quick {
				cfg.QueryCount, cfg.EpisodesPerPhase, cfg.MaxRel = 12, 400, 5
			}
			applySeed(&cfg.Seed, *seed)
			run("incremental", func() (renderer, error) { return lab.CurriculumExperiment(cfg) })
		},
		"ablation-oracle": func() {
			cfg := experiment.DefaultAblationOracleConfig()
			if *quick {
				cfg.QueryCount = 8
			}
			applySeed(&cfg.Seed, *seed)
			run("ablation-oracle", func() (renderer, error) { return lab.AblationOracle(cfg) })
		},
		"ablation-enum": func() {
			cfg := experiment.DefaultAblationEnumeratorConfig()
			if *quick {
				cfg.Repeats = 2
			}
			applySeed(&cfg.Seed, *seed)
			run("ablation-enum", func() (renderer, error) { return lab.AblationEnumerator(cfg) })
		},
	}

	if cmd == "all" {
		for _, name := range []string{"fig3a", "fig3b", "fig3c", "naive", "scratch", "lfd", "bootstrap", "incremental", "ablation-oracle", "ablation-enum"} {
			experiments[name]()
		}
		return
	}
	f, ok := experiments[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	f()
}

// renderer is anything that can print itself.
type renderer interface{ Render() string }

func applySeed(dst *int64, override int64) {
	if override != 0 {
		*dst = override
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "handsfree:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: handsfree [-quick] [-scale f] [-seed n] [-precision f64|f32] <experiment>

experiments:
  fig3a        ReJOIN convergence (Figure 3a)
  fig3b        final plan cost per JOB query (Figure 3b)
  fig3c        planning time vs relation count (Figure 3c)
  naive        §4 naive full-plan-space DRL vs restricted join-order DRL
  scratch      §4 footnote 2: latency-as-reward, tabula rasa
  lfd          §5.1 learning from demonstration
  bootstrap    §5.2 cost-model bootstrapping (scaled vs unscaled switch)
  incremental  §5.3 incremental learning curricula
  ablation-oracle  latency headroom vs cost-model error strength
  ablation-enum    bushy DP vs left-deep DP vs greedy vs GEQO
  all          run everything
`)
}
