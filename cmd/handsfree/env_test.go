package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestEnvPrintsServingConfig is the golden test for the `handsfree env`
// serving section: operators diff this output across deployments, so the
// resolved serving configuration — address, tenant count, queue depth, SLO,
// timeouts — must render exactly, with flag overrides applied.
func TestEnvPrintsServingConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary; skipped in -short mode")
	}
	bin := t.TempDir() + "/handsfree"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin,
		"-addr", ":9090",
		"-tenants", "2",
		"-concurrency", "8",
		"-queue", "32",
		"-slo", "250ms",
		"-request-timeout", "10s",
		"-max-timeout", "1m",
		"-drain", "15s",
		"env").CombinedOutput()
	if err != nil {
		t.Fatalf("handsfree env: %v\n%s", err, out)
	}
	got := string(out)
	want := `serving:
  addr:            :9090
  tenants:         2
  concurrency:     8
  queue depth:     32
  queue-wait SLO:  250ms
  default timeout: 10s
  max timeout:     1m0s
  drain timeout:   15s
`
	if !strings.Contains(got, want) {
		t.Fatalf("env output missing the golden serving section:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The compute section is still there too.
	for _, frag := range []string{"engine:", "precision:", "kernel workers:"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("env output missing %q:\n%s", frag, got)
		}
	}
}
