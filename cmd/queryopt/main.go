// Command queryopt optimizes a single SQL query against the synthetic
// database with every available planner and reports plans, costs, and
// simulated latencies.
//
//	queryopt -sql "SELECT COUNT(*) FROM title t, movie_companies mc WHERE mc.movie_id = t.id AND t.production_year > 80"
//	queryopt -named 8c
//	queryopt -named 8c -execute
package main

import (
	"flag"
	"fmt"
	"os"

	"handsfree"
	"handsfree/internal/optimizer"
)

func main() {
	sql := flag.String("sql", "", "SQL text to optimize")
	named := flag.String("named", "", "named workload query (e.g. 1a, 8c, 22c)")
	scale := flag.Float64("scale", 0.25, "database scale factor")
	execute := flag.Bool("execute", false, "also execute the best plan on the columnar engine")
	flag.Parse()

	if (*sql == "") == (*named == "") {
		fmt.Fprintln(os.Stderr, "queryopt: provide exactly one of -sql or -named")
		os.Exit(2)
	}

	sys, err := handsfree.Open(handsfree.Config{Scale: *scale})
	if err != nil {
		fatal(err)
	}

	var q *handsfree.Query
	if *sql != "" {
		q, err = handsfree.ParseSQL(*sql)
	} else {
		q, err = sys.Workload.Named(*named)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("query: %s\n\n", q.SQL())
	for _, strat := range []optimizer.Strategy{optimizer.DP, optimizer.Greedy, optimizer.GEQO} {
		if strat == optimizer.DP && len(q.Relations) > sys.Planner.DPThreshold {
			fmt.Printf("— %s: skipped (%d relations exceed the DP threshold)\n\n", strat, len(q.Relations))
			continue
		}
		planned, err := sys.Planner.PlanWith(q, strat)
		if err != nil {
			fatal(err)
		}
		lat := sys.SimulateLatency(q, planned.Root)
		fmt.Printf("— %s: cost %.1f, est rows %.0f, planning time %s, simulated latency %.2f ms\n%s\n",
			strat, planned.Cost, planned.Rows, planned.Duration.Round(0), lat, handsfree.ExplainPlan(planned.Root))
	}

	if *execute {
		planned, err := sys.Plan(q)
		if err != nil {
			fatal(err)
		}
		res, work, err := sys.Execute(q, planned.Root)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed: %d result rows, work: %d tuples read, %d emitted, %d comparisons, %d hash ops\n",
			res.N, work.TuplesRead, work.TuplesEmitted, work.Comparisons, work.HashOps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queryopt:", err)
	os.Exit(1)
}
