// Command queryopt optimizes a single SQL query against the synthetic
// database with every available planner and reports plans, costs, and the
// cost model's latency predictions, then serves the query through the
// handsfree.Service decision path (expert plan + safeguards). With -execute
// the served plan actually runs on the columnar engine and the observed
// latency — the signal the service's latency guard and drift detector feed
// on — is reported next to the decision.
//
//	queryopt -sql "SELECT COUNT(*) FROM title t, movie_companies mc WHERE mc.movie_id = t.id AND t.production_year > 80"
//	queryopt -named 8c
//	queryopt -named 8c -execute
//	queryopt -named 22c -timeout 50ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"handsfree"
	"handsfree/internal/optimizer"
)

func main() {
	sql := flag.String("sql", "", "SQL text to optimize")
	named := flag.String("named", "", "named workload query (e.g. 1a, 8c, 22c)")
	scale := flag.Float64("scale", 0.25, "database scale factor")
	execute := flag.Bool("execute", false, "also execute the best plan on the columnar engine")
	timeout := flag.Duration("timeout", 0, "planning deadline per query (0 = none); expired deadlines abort the search mid-flight")
	flag.Parse()

	if (*sql == "") == (*named == "") {
		fmt.Fprintln(os.Stderr, "queryopt: provide exactly one of -sql or -named")
		os.Exit(2)
	}

	svc, err := handsfree.New(handsfree.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	sys := svc.System()

	// planCtx returns a fresh request context per planning call, so each
	// strategy gets the full -timeout budget.
	planCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	var q *handsfree.Query
	if *sql != "" {
		q, err = handsfree.ParseSQL(*sql)
	} else {
		q, err = sys.Workload.Named(*named)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("query: %s\n\n", q.SQL())
	for _, strat := range []optimizer.Strategy{optimizer.DP, optimizer.Greedy, optimizer.GEQO} {
		if strat == optimizer.DP && len(q.Relations) > sys.Planner.DPThreshold {
			fmt.Printf("— %s: skipped (%d relations exceed the DP threshold)\n\n", strat, len(q.Relations))
			continue
		}
		ctx, cancel := planCtx()
		planned, err := sys.Planner.PlanWithCtx(ctx, q, strat)
		cancel()
		if err != nil {
			fmt.Printf("— %s: aborted (%v)\n\n", strat, err)
			continue
		}
		lat := sys.Latency.Latency(q, planned.Root)
		fmt.Printf("— %s: cost %.1f, est rows %.0f, planning time %s, predicted latency %.2f ms\n%s\n",
			strat, planned.Cost, planned.Rows, planned.Duration.Round(0), lat, handsfree.ExplainPlan(planned.Root))
	}

	if !*execute {
		// The service decision: what a hands-free deployment would actually
		// serve (expert until trained, learned within the safeguards after).
		ctx, cancel := planCtx()
		res, err := svc.Plan(ctx, q)
		cancel()
		if err != nil {
			fmt.Printf("— service: aborted (%v)\n", err)
		} else {
			fmt.Printf("— service decision: source %s, cost %.1f (expert %.1f, policy v%d)\n",
				res.Source, res.Cost, res.ExpertCost, res.PolicyVersion)
		}
		return
	}

	// Execute runs the served decision on the engine and feeds the observed
	// latency back into the service's latency guard and drift detector.
	ctx, cancel := planCtx()
	res, err := svc.Execute(ctx, q)
	cancel()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("— service decision: source %s%s, cost %.1f (expert %.1f, policy v%d)\n",
		res.Source, guardNote(res), res.Cost, res.ExpertCost, res.PolicyVersion)
	fmt.Printf("executed: %d result rows in %.2f ms observed (%d work units)\n",
		res.Rows, res.LatencyMs, res.WorkUnits)
	if res.TimedOut {
		fmt.Println("execution was censored at the latency budget")
	}
}

// guardNote annotates a decision's source with which safeguard forced it.
func guardNote(res handsfree.ExecResult) string {
	switch {
	case res.Failed:
		return " (learned execution failed; expert served)"
	case res.LatencyGuarded:
		return " (observed-latency guard)"
	default:
		return ""
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queryopt:", err)
	os.Exit(1)
}
