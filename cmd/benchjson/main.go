// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array of benchmark results, so CI can publish machine-readable
// performance data points (name, ns/op, B/op, allocs/op, custom metrics)
// as build artifacts and the perf trajectory accumulates data across PRs.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// -cpu suffix (e.g. "BenchmarkBatchedTrain/f32-8").
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are reported with -benchmem (omitted
	// otherwise).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other unit the benchmark reported via
	// b.ReportMetric (e.g. "hit-rate", "episodes/sec").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `Benchmark... <iters> <value> <unit> [...]` line.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	// Value/unit pairs follow the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}
