package handsfree_test

import (
	"context"
	"fmt"

	"handsfree"
)

// ExampleService builds the optimizer service with functional options, runs
// the full learning lifecycle (demonstration → cost training → latency
// tuning) in the background, and serves the workload through the
// safeguarded, request-scoped Plan path.
func ExampleService() {
	svc, err := handsfree.New(
		handsfree.WithScale(0.05),
		handsfree.WithWorkload(4, 4, 5, 3),
		handsfree.WithFallbackRatio(1.2),
	)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// Untrained: the expert (traditional optimizer) serves every query.
	before, err := svc.Plan(ctx, svc.Queries()[0])
	if err != nil {
		panic(err)
	}
	fmt.Println("before training:", before.Source)

	// The learning state machine runs in the background; serving continues
	// (and hot-swaps policies) throughout. Tiny budgets keep the example
	// fast.
	err = svc.StartTraining(ctx, handsfree.LifecycleConfig{
		Hidden: []int{32}, PretrainBatches: 4, DemoSweeps: 1,
		CostEpisodes: 32, LatencyEpisodes: 16, Actors: 2, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	if err := svc.WaitTraining(ctx); err != nil {
		panic(err)
	}

	st := svc.LifecycleStats()
	fmt.Println("phases visited:", len(st.Transitions))
	fmt.Println("final phase:", st.Phase)
	fmt.Println("policy published:", st.PolicyVersion > 0)

	// Trained: decisions consult the learned policy, and the regression
	// guard keeps every served plan within 1.2× the expert's cost.
	after, err := svc.Plan(ctx, svc.Queries()[0])
	if err != nil {
		panic(err)
	}
	fmt.Println("safeguard holds:", after.Cost <= 1.2*after.ExpertCost)
	// Output:
	// before training: expert
	// phases visited: 4
	// final phase: done
	// policy published: true
	// safeguard holds: true
}

// ExampleOpen builds the synthetic substrate and plans a SQL query with the
// traditional optimizer.
func ExampleOpen() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		panic(err)
	}
	planned, err := sys.PlanSQL(`SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE mc.movie_id = t.id AND t.production_year > 50`)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", planned.Strategy)
	fmt.Println("relations planned:", len(planned.Root.Aliases()))
	fmt.Println("positive cost:", planned.Cost > 0)
	// Output:
	// strategy: dp
	// relations planned: 2
	// positive cost: true
}

// ExampleSystem_NewReJOINAgent trains the paper's §3 join-order enumerator
// for a few episodes and plans a workload query with the learned policy.
func ExampleSystem_NewReJOINAgent() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		panic(err)
	}
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		panic(err)
	}
	agent, err := sys.NewReJOINAgent(queries, handsfree.ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		panic(err)
	}
	agent.Train(32) // sequential; agent.TrainParallel(32, workers) is equivalent and deterministic
	root, cost := agent.Plan(queries[0])
	fmt.Println("learned a plan:", root != nil)
	fmt.Println("positive cost:", cost > 0)
	// Output:
	// learned a plan: true
	// positive cost: true
}

// ExampleConfig_cache enables the plan cache service: episode collection
// memoizes optimizer completions, so every repetition of a workload query
// after the first is served (fully or partially) from cache.
func ExampleConfig_cache() {
	sys, err := handsfree.Open(handsfree.Config{
		Scale: 0.05,
		Cache: handsfree.CacheConfig{Enabled: true, Capacity: 4096},
	})
	if err != nil {
		panic(err)
	}
	queries, err := sys.Workload.Training(4, 4, 5, 3)
	if err != nil {
		panic(err)
	}
	agent, err := sys.NewReJOINAgent(queries, handsfree.ReJOINConfig{Seed: 1, Hidden: []int{32}})
	if err != nil {
		panic(err)
	}
	// Two parallel collection sweeps over the same 4-query workload: the
	// second revisits fingerprints the first one cached.
	agent.TrainParallel(16, 2)
	agent.TrainParallel(16, 2)

	st := sys.CacheStats()
	fmt.Println("cache used:", st.Puts > 0)
	fmt.Println("repeated queries hit:", st.Hits > 0)
	fmt.Println("bounded:", st.Size <= 4096)
	// Output:
	// cache used: true
	// repeated queries hit: true
	// bounded: true
}
