// Package handsfree is a from-scratch Go reproduction of "Towards a
// Hands-Free Query Optimizer through Deep Learning" (Marcus &
// Papaemmanouil, CIDR 2019): a deep-reinforcement-learning query optimizer
// stack built on a synthetic relational substrate.
//
// The package's primary entry point is the optimizer-as-a-service API:
//
//   - New assembles the synthetic JOB-like database with statistics, a
//     PostgreSQL-style cost model, a traditional optimizer, a truth oracle,
//     and a latency simulator, and wraps them in a concurrency-safe Service
//     (functional options: WithScale, WithPrecision, WithCache,
//     WithWorkload, WithFallbackRatio, …).
//   - Service.Plan / Service.PlanSQL serve request-scoped, safeguarded
//     planning decisions: context deadlines cut searches off mid-flight,
//     and a regression guard falls back to the expert plan whenever the
//     learned plan's cost regresses past a configurable ratio.
//   - Service.StartTraining runs the paper's learning state machine in the
//     background — observe the expert (§5.1), train on cost (§5.2 Phase 1),
//     fine-tune on latency (§5.2 Phase 2) — hot-swapping policy snapshots
//     while serving continues.
//   - ParseSQL turns SQL text into the query IR.
//   - The internal/experiment package (exposed through cmd/handsfree)
//     regenerates every figure of the paper.
//
// The pre-service API (Open, System.Plan, System.NewReJOINAgent) remains as
// thin deprecated wrappers delegating to the same machinery.
//
// See README.md for an overview and ARCHITECTURE.md for the layer stack,
// the data flow of the batched + cached training loop, and the service
// lifecycle state machine.
package handsfree

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/nn"
	"handsfree/internal/optimizer"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
	"handsfree/internal/rejoin"
	"handsfree/internal/rl"
	"handsfree/internal/sketch"
	"handsfree/internal/sqlparse"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

// Re-exported core types. The internal packages carry the full APIs; these
// aliases cover the common entry points.
type (
	// Query is the logical query IR.
	Query = query.Query
	// PlanNode is a physical plan operator.
	PlanNode = plan.Node
	// Planned couples a plan with its cost and planning duration.
	Planned = optimizer.Planned
	// Result is a materialized execution result.
	Result = engine.Result
	// Work is the executor's effort accounting.
	Work = engine.Work
	// PlanCache is the plan cache service: a sharded fingerprint → plan
	// memoization layer shared by the optimizer and the learned agents.
	PlanCache = plancache.Cache
	// PlanCacheStats is a snapshot of the plan cache's hit/miss/eviction
	// counters.
	PlanCacheStats = plancache.Stats
	// AsyncConfig controls asynchronous actor-learner training: actor
	// count, the staleness bound K on parameter-server snapshots, queue
	// depth, and whether over-stale trajectories are dropped.
	AsyncConfig = rl.AsyncConfig
	// AsyncStats summarizes an asynchronous training run (updates,
	// publishes, max observed staleness, dropped trajectories).
	AsyncStats = rl.AsyncStats
	// Precision selects the scalar type the learned agents' networks store
	// and compute in; see Config.Precision.
	Precision = nn.Precision
	// ComputeEngine selects the dense-kernel backend the learned agents'
	// networks run on; see Config.Engine. (Named ComputeEngine because
	// System.Engine is the query executor.)
	ComputeEngine = nn.Engine
)

// Precision values for Config.Precision and ReJOINConfig.Precision.
const (
	// PrecisionAuto resolves through the HANDSFREE_PRECISION environment
	// variable and defaults to F64.
	PrecisionAuto = nn.PrecisionAuto
	// F64 is the float64 tensor path: the bitwise-deterministic reference.
	F64 = nn.F64
	// F32 is the float32 tensor path: half the memory bandwidth on every
	// batched network kernel, verified against F64 by tolerance-based
	// parity. Pick it for long training runs where throughput matters more
	// than bitwise reproducibility; see README.md.
	F32 = nn.F32
)

// Compute-engine values for Config.Engine and ReJOINConfig.Engine.
const (
	// EngineAuto resolves through the HANDSFREE_ENGINE environment variable
	// and falls back to the build's compiled-in default (the reference
	// engine unless built with -tags handsfree_blocked).
	EngineAuto = nn.EngineAuto
	// EngineReference is the pure-Go naive-kernel backend: the
	// bitwise-deterministic reference every other engine is verified
	// against.
	EngineReference = nn.EngineReference
	// EngineBlocked is the cache-blocked, register-tiled GEMM backend:
	// packed B-panels and 4×4 unrolled microkernels, tolerance-verified
	// against the reference (f64 rel ≤1e-12, f32 rel ≤1e-4). Pick it for
	// training throughput; see README.md.
	EngineBlocked = nn.EngineBlocked
)

// StatsMode selects the statistics source the planning stack — cost model,
// optimizer DP, and learned featurization — reads its cardinality estimates
// from; see Config.Stats.
type StatsMode int

// Statistics modes for Config.Stats.
const (
	// StatsAuto resolves through the HANDSFREE_STATS environment variable
	// ("exact" | "sketch") and defaults to StatsExact.
	StatsAuto StatsMode = iota
	// StatsExact runs planning on the exact per-column statistics
	// (equi-depth histograms + MCV lists) — the historical behavior.
	StatsExact
	// StatsSketch runs planning on probabilistic sketches alone:
	// HyperLogLog distinct counts, Count-Min equality frequencies, and
	// reservoir-sample CDFs, built in one pass per column. Same System-R
	// estimation formulas, noisy-but-cheap inputs — the scalable mode.
	StatsSketch
)

// Resolve maps StatsAuto through HANDSFREE_STATS to a concrete mode.
func (m StatsMode) Resolve() StatsMode {
	if m != StatsAuto {
		return m
	}
	if strings.EqualFold(os.Getenv("HANDSFREE_STATS"), "sketch") {
		return StatsSketch
	}
	return StatsExact
}

// String names the mode ("exact", "sketch", or "auto").
func (m StatsMode) String() string {
	switch m {
	case StatsExact:
		return "exact"
	case StatsSketch:
		return "sketch"
	default:
		return "auto"
	}
}

// CacheConfig controls the optional plan cache service.
type CacheConfig struct {
	// Enabled turns on fingerprint → plan memoization: the optimizer's
	// full plans and the per-episode skeleton completions are cached
	// across episodes, so repeated workload queries are cheap on every
	// visit after the first.
	Enabled bool
	// Capacity bounds the cached entry count (default 4096; LRU eviction).
	Capacity int
	// Shards is the lock-sharding factor; parallel collection workers
	// rarely contend when it exceeds the worker count (default 16,
	// rounded up to a power of two).
	Shards int
	// MinAdmitCost skips caching completion subtrees whose plan cost is
	// below the threshold: such entries cost about as much to look up as to
	// recompute, and in stochastic training they dominate memoization
	// traffic while almost never hitting. 0 admits everything. Skips are
	// counted in PlanCacheStats.AdmissionSkips.
	MinAdmitCost float64
}

// Config controls Open.
type Config struct {
	// Seed drives data generation (default 1).
	Seed int64
	// Scale is the database scale factor (default 1.0 ≈ 400k rows).
	Scale float64
	// OracleSeed selects the systematic cardinality-error field (default 11).
	OracleSeed int64
	// LatencySeed selects the execution-noise field (default 5).
	LatencySeed int64
	// Cache configures the plan cache service (disabled by default).
	Cache CacheConfig
	// Precision is the default scalar type for every learned agent the
	// system builds (per-agent configs may override it). The default,
	// PrecisionAuto, resolves through the HANDSFREE_PRECISION environment
	// variable and falls back to F64 — bitwise-identical to the historical
	// float64 behavior. F32 halves the memory bandwidth of every batched
	// network kernel at tolerance-bounded (not bitwise) parity.
	Precision Precision
	// Engine is the default dense-kernel backend for every learned agent
	// the system builds (per-agent configs may override it). The default,
	// EngineAuto, resolves through the HANDSFREE_ENGINE environment
	// variable and falls back to the build's compiled-in engine —
	// EngineReference unless built with -tags handsfree_blocked.
	Engine ComputeEngine
	// Stats selects the statistics source planning runs on. The default,
	// StatsAuto, resolves through the HANDSFREE_STATS environment variable
	// and falls back to StatsExact. StatsSketch replaces the histogram
	// estimator with the sketch-backed one everywhere the planner stack
	// reads cardinalities; the truth oracle and latency simulator keep
	// their exact basis either way (they model the world, not the
	// planner's beliefs).
	Stats StatsMode
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.OracleSeed == 0 {
		c.OracleSeed = 11
	}
	if c.LatencySeed == 0 {
		c.LatencySeed = 5
	}
}

// System bundles the full substrate: database, statistics, cost model,
// traditional optimizer, truth oracle, latency simulator, executor, and
// workload generators.
type System struct {
	DB       *datagen.Database
	Stats    *stats.Stats
	Est      *stats.Estimator
	Oracle   *stats.Oracle
	Cost     *cost.Model
	Planner  *optimizer.Planner
	Latency  *engine.LatencyModel
	Engine   *engine.Engine
	Workload *workload.Workload
	// PlanCache is the plan cache service attached to Planner (nil unless
	// Config.Cache.Enabled).
	PlanCache *PlanCache
	// Precision is the system-wide default for learned agents (resolved
	// from Config.Precision).
	Precision Precision
	// Compute is the system-wide default dense-kernel backend for learned
	// agents (resolved from Config.Engine; Engine is the query executor).
	Compute ComputeEngine
	// StatsSource is the resolved statistics mode planning runs on
	// (Config.Stats through HANDSFREE_STATS).
	StatsSource StatsMode

	// sketchOnce guards the lazily built sketch store: exact-stats systems
	// only pay the one-pass analysis when something asks for sketches
	// (approximate execution, or an explicit Sketches call); sketch-stats
	// systems build them at Open because the cost model reads them.
	sketchOnce sync.Once
	sketches   *sketch.Store
	sketchEst  *sketch.Estimator
	sketchSeed uint64

	// cacheTag fingerprints the configuration that determines plan
	// identity (database seed, scale, oracle seed, statistics mode);
	// plan-cache dumps carry it so a dump can never warm a differently
	// built system.
	cacheTag uint64
	// svc is the owning Service: every System is built through New, and the
	// deprecated System entry points delegate to it.
	svc *Service
}

// buildSketches analyzes the stored tables into the sketch store, once.
func (s *System) buildSketches() {
	s.sketchOnce.Do(func() {
		a := sketch.NewAnalyzer(sketch.Config{Seed: s.sketchSeed})
		s.sketches = a.Analyze(s.DB.Store)
		s.sketchEst = sketch.NewEstimator(s.DB.Catalog, s.sketches)
	})
}

// Sketches returns the sketch store (building it on first use).
func (s *System) Sketches() *sketch.Store {
	s.buildSketches()
	return s.sketches
}

// SketchEstimator returns the sketch-backed cardinality estimator
// (building the store on first use).
func (s *System) SketchEstimator() *sketch.Estimator {
	s.buildSketches()
	return s.sketchEst
}

// cardEstimator returns the estimator the planning stack runs on in the
// resolved statistics mode — the featurization side of the same choice the
// cost model made at Open.
func (s *System) cardEstimator() featurize.Estimator {
	if s.StatsSource == StatsSketch {
		return s.SketchEstimator()
	}
	return s.Est
}

// systemTag hashes the configuration fields that determine what plans and
// costs the system computes (FNV-1a over seed, scale bits, oracle seed).
func systemTag(cfg Config) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(cfg.Seed))
	mix(math.Float64bits(cfg.Scale))
	mix(uint64(cfg.OracleSeed))
	// Sketch-driven planning produces different plans for the same query,
	// so the mode is part of plan identity. Exact mode mixes nothing,
	// keeping historical tags (and saved dumps) valid.
	if cfg.Stats.Resolve() == StatsSketch {
		mix(0x5ce7c4)
	}
	return h
}

// Open generates the synthetic database and assembles the system.
//
// Deprecated: Open is the pre-service entry point, retained as a thin
// wrapper that builds a Service and returns its System view. New code
// should call New with functional options and use the request-scoped,
// safeguarded Service API.
func Open(cfg Config) (*System, error) {
	svc, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return svc.System(), nil
}

// openSystem generates the synthetic database and assembles the substrate
// bundle (the construction behind New and, through it, Open).
func openSystem(cfg Config) (*System, error) {
	cfg.fill()
	db, err := datagen.Generate(datagen.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	oracle := stats.NewOracle(est, cfg.OracleSeed)
	sys := &System{
		DB:          db,
		Stats:       db.Stats,
		Est:         est,
		Oracle:      oracle,
		Latency:     engine.NewLatencyModel(oracle, cfg.LatencySeed),
		Engine:      engine.New(db.Store),
		Workload:    workload.New(db),
		Precision:   cfg.Precision.Resolve(),
		Compute:     cfg.Engine.Resolve(),
		StatsSource: cfg.Stats.Resolve(),
		sketchSeed:  uint64(cfg.Seed),
		cacheTag:    systemTag(cfg),
	}
	// The cost model reads cardinalities from the mode's estimator; the
	// oracle and latency model above stay exact-based — they are the
	// simulated world, not the planner's beliefs about it.
	var cards cost.CardSource = est
	if sys.StatsSource == StatsSketch {
		cards = sys.SketchEstimator()
	}
	sys.Cost = cost.New(cost.DefaultParams(), cards)
	sys.Planner = optimizer.New(db.Catalog, sys.Cost)
	if cfg.Cache.Enabled {
		sys.PlanCache = plancache.New(plancache.Config{
			Capacity:     cfg.Cache.Capacity,
			Shards:       cfg.Cache.Shards,
			MinAdmitCost: cfg.Cache.MinAdmitCost,
		})
		sys.Planner = sys.Planner.WithCache(sys.PlanCache)
	}
	return sys, nil
}

// SavePlanCache serializes the plan cache's pure (policy-independent)
// entries to w, so a restarted system can warm-start with LoadPlanCache and
// skip the cold completion sweep on its repeated workload. The dump is
// tagged with the system's plan-identity fingerprint (database seed, scale,
// oracle seed), so it can only be loaded into an identically configured
// system. Errors if the cache is disabled.
func (s *System) SavePlanCache(w io.Writer) error {
	if s.PlanCache == nil {
		return fmt.Errorf("handsfree: plan cache is disabled (Config.Cache.Enabled)")
	}
	return s.PlanCache.Save(w, s.cacheTag)
}

// LoadPlanCache replays a dump written by SavePlanCache into the system's
// plan cache, returning how many entries the cache stored. It errors if the
// cache is disabled or if the dump was produced by a system with a
// different database seed, scale, or oracle seed — entries keyed under one
// catalog must never serve another.
func (s *System) LoadPlanCache(r io.Reader) (int, error) {
	if s.PlanCache == nil {
		return 0, fmt.Errorf("handsfree: plan cache is disabled (Config.Cache.Enabled)")
	}
	return s.PlanCache.Load(r, s.cacheTag)
}

// CacheStats snapshots the plan cache counters (zeros when the cache is
// disabled).
func (s *System) CacheStats() PlanCacheStats {
	return s.PlanCache.Stats()
}

// ParseSQL parses SQL text into the query IR.
func ParseSQL(sql string) (*Query, error) {
	return sqlparse.Parse(sql)
}

// Plan optimizes a query with the traditional optimizer (Selinger DP up to
// 12 relations, GEQO-style randomized search beyond).
//
// Deprecated: use Service.Plan for safeguarded serving or
// Service.ExpertPlan for a request-scoped expert plan; this wrapper
// delegates to the owning service's expert path with a background context.
func (s *System) Plan(q *Query) (Planned, error) {
	if s.svc != nil {
		return s.svc.ExpertPlan(context.Background(), q)
	}
	return s.Planner.Plan(q)
}

// PlanSQL parses and optimizes SQL text.
//
// Deprecated: use Service.PlanSQL; see System.Plan.
func (s *System) PlanSQL(sql string) (Planned, error) {
	q, err := ParseSQL(sql)
	if err != nil {
		return Planned{}, err
	}
	return s.Plan(q)
}

// Execute runs a physical plan on the columnar engine, returning the result
// and the deterministic work accounting.
func (s *System) Execute(q *Query, root PlanNode) (*Result, *Work, error) {
	return s.Engine.Execute(q, root)
}

// SimulateLatency returns the simulated execution latency (milliseconds) of
// a plan on the "production" system — true cardinalities, hardware-truth
// constants, seeded noise.
//
// Deprecated: SimulateLatency is the analytic simulator; it predicts, it
// does not observe, so injected faults and real engine behavior never reach
// it. Use Service.Execute, which runs the plan and feeds the observed
// latency into the guard and drift machinery. Retained for the
// simulator-driven experiments.
func (s *System) SimulateLatency(q *Query, root PlanNode) float64 {
	return s.Latency.Latency(q, root)
}

// ExplainPlan renders a plan tree in EXPLAIN style.
func ExplainPlan(root PlanNode) string {
	return plan.Format(root)
}

// ReJOINAgent is the §3 learned join-order enumerator.
type ReJOINAgent struct {
	agent *rejoin.Agent
}

// ReJOINConfig sizes a ReJOIN agent.
type ReJOINConfig struct {
	// MaxRelations bounds the relation count of trainable queries.
	MaxRelations int
	// Hidden layer widths (default 128, 64).
	Hidden []int
	// LR is the learning rate (default 1.5e-3).
	LR float64
	// Precision overrides the system-wide Config.Precision for this agent's
	// policy network (PrecisionAuto inherits the system setting).
	Precision Precision
	// Engine overrides the system-wide Config.Engine for this agent's
	// policy network (EngineAuto inherits the system setting).
	Engine ComputeEngine
	Seed   int64
}

// NewReJOINAgent builds a ReJOIN agent over a training workload. Queries
// must not exceed cfg.MaxRelations relations.
//
// Deprecated: this wrapper delegates to Service.NewReJOINAgent; prefer the
// Service lifecycle (StartTraining) for hands-free training, or
// Service.NewReJOINAgent for direct §3-style agent control.
func (s *System) NewReJOINAgent(queries []*Query, cfg ReJOINConfig) (*ReJOINAgent, error) {
	if s.svc != nil {
		return s.svc.NewReJOINAgent(queries, cfg)
	}
	return newReJOINAgent(s, queries, cfg)
}

// NewReJOINAgent builds the paper's §3 join-order enumerator over a
// training workload. Queries must not exceed cfg.MaxRelations relations.
// The agent is independent of the service lifecycle: it trains its own
// policy and is planned with directly (ReJOINAgent.Plan / PlanCtx).
func (s *Service) NewReJOINAgent(queries []*Query, cfg ReJOINConfig) (*ReJOINAgent, error) {
	return newReJOINAgent(s.sys, queries, cfg)
}

func newReJOINAgent(sys *System, queries []*Query, cfg ReJOINConfig) (*ReJOINAgent, error) {
	if cfg.MaxRelations == 0 {
		for _, q := range queries {
			if len(q.Relations) > cfg.MaxRelations {
				cfg.MaxRelations = len(q.Relations)
			}
		}
	}
	for _, q := range queries {
		if len(q.Relations) > cfg.MaxRelations {
			return nil, fmt.Errorf("handsfree: query %s has %d relations, above the agent's %d", q.Name, len(q.Relations), cfg.MaxRelations)
		}
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{128, 64}
	}
	if cfg.LR == 0 {
		cfg.LR = 1.5e-3
	}
	prec := cfg.Precision
	if prec == PrecisionAuto {
		prec = sys.Precision
	}
	eng := cfg.Engine
	if eng == EngineAuto {
		eng = sys.Compute
	}
	space := featurize.NewSpace(cfg.MaxRelations, sys.cardEstimator())
	env := rejoin.NewEnv(space, sys.Planner, queries, cfg.Seed)
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{
		Hidden: cfg.Hidden, LR: cfg.LR, BatchSize: 16, Precision: prec, Engine: eng, Seed: cfg.Seed,
	})
	return &ReJOINAgent{agent: agent}, nil
}

// TrainEpisode runs one learning episode (one query) and returns the cost
// of the plan the agent produced.
func (a *ReJOINAgent) TrainEpisode() float64 {
	return a.agent.TrainEpisode().Cost
}

// Train runs n learning episodes sequentially.
func (a *ReJOINAgent) Train(n int) {
	a.agent.TrainEpisodes(n, 1)
}

// TrainParallel runs n learning episodes collected by `workers` concurrent
// environment replicas stepping frozen policy snapshots. Trajectories merge
// deterministically, so training remains reproducible for a fixed seed and
// worker count; use runtime.NumCPU() workers to saturate the machine.
func (a *ReJOINAgent) TrainParallel(n, workers int) {
	a.agent.TrainEpisodes(n, workers)
}

// TrainAsync runs n learning episodes with the asynchronous actor-learner
// split: cfg.Actors environment replicas collect continuously against
// lock-free parameter-server snapshots (staleness bounded by cfg.Staleness
// versions) while the learner updates and republishes without a round
// barrier. Highest throughput, but episode order — and therefore the exact
// trained weights — is scheduling-dependent; use TrainParallel when bitwise
// reproducibility matters.
func (a *ReJOINAgent) TrainAsync(n int, cfg AsyncConfig) {
	a.agent.TrainAsync(n, cfg)
}

// Plan produces the trained agent's (greedy) plan for a query along with
// its optimizer cost.
func (a *ReJOINAgent) Plan(q *Query) (PlanNode, float64) {
	return a.agent.GreedyPlan(q)
}

// PlanCtx is Plan under a request-scoped context: the greedy rollout checks
// ctx before every policy decision, so a deadline or cancellation cuts the
// search off mid-episode and returns ctx.Err().
func (a *ReJOINAgent) PlanCtx(ctx context.Context, q *Query) (PlanNode, float64, error) {
	return a.agent.GreedyPlanCtx(ctx, q)
}
